//! Definition 1 of the paper: the eight kinds of eliminable actions.

use std::fmt;

use transafety_traces::{Loc, WildAction, WildTrace};

/// The kind of redundancy justifying the elimination of an action
/// (Definition 1 of the paper).
///
/// Kinds 1–5 are *properly eliminable* (§6.1): they compose under trace
/// concatenation and correspond to the syntactic elimination rules of
/// Fig. 10. Kinds 6–8 are *last-action* eliminations, needed to make the
/// semantic reordering transformation work (see the §4 worked example,
/// where an irrelevant read is eliminated before reordering).
///
/// # Example
///
/// ```
/// use transafety_traces::{Action, Loc, ThreadId, Value, WildAction, WildTrace};
/// use transafety_transform::{eliminable_kinds, EliminationKind};
/// let x = Loc::normal(0);
/// let t = WildTrace::from_elements([
///     Action::start(ThreadId::new(0)).into(),
///     Action::read(x, Value::new(1)).into(),
///     Action::read(x, Value::new(1)).into(),
/// ]);
/// assert_eq!(eliminable_kinds(&t, 2), vec![EliminationKind::ReadAfterRead]);
/// assert!(eliminable_kinds(&t, 1).is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EliminationKind {
    /// Case 1: a read of the same value as an earlier read of the same
    /// non-volatile location, with no intervening release–acquire pair or
    /// write to the location.
    ReadAfterRead,
    /// Case 2: a read of the value written by an earlier write to the same
    /// non-volatile location, with no intervening release–acquire pair or
    /// write to the location.
    ReadAfterWrite,
    /// Case 3: a wildcard (irrelevant) read of a non-volatile location.
    IrrelevantRead,
    /// Case 4: a write of the value obtained by an earlier read of the
    /// same non-volatile location, with no intervening release–acquire
    /// pair or other access to the location.
    WriteAfterRead,
    /// Case 5: a write overwritten by a later write to the same
    /// non-volatile location, with no intervening release–acquire pair or
    /// other access to the location.
    OverwrittenWrite,
    /// Case 6: a normal write with no later release action and no later
    /// access to the same location.
    RedundantLastWrite,
    /// Case 7: a release with no later synchronisation or external
    /// actions.
    RedundantRelease,
    /// Case 8: an external action with no later synchronisation or
    /// external actions.
    RedundantExternal,
}

impl EliminationKind {
    /// All eight kinds, in Definition 1 order.
    pub const ALL: [EliminationKind; 8] = [
        EliminationKind::ReadAfterRead,
        EliminationKind::ReadAfterWrite,
        EliminationKind::IrrelevantRead,
        EliminationKind::WriteAfterRead,
        EliminationKind::OverwrittenWrite,
        EliminationKind::RedundantLastWrite,
        EliminationKind::RedundantRelease,
        EliminationKind::RedundantExternal,
    ];

    /// Is this one of the *properly eliminable* kinds 1–5 (§6.1), the
    /// composable subset used by the syntactic elimination relation?
    #[must_use]
    pub const fn is_proper(self) -> bool {
        matches!(
            self,
            EliminationKind::ReadAfterRead
                | EliminationKind::ReadAfterWrite
                | EliminationKind::IrrelevantRead
                | EliminationKind::WriteAfterRead
                | EliminationKind::OverwrittenWrite
        )
    }

    /// Is an elimination of this kind proven safe for data-race-free
    /// programs under the given memory model?
    ///
    /// Under SC this is the paper's main theorem: every kind is safe.
    /// Under the hardware models, the safety proofs in the literature
    /// cover the *read* eliminations — §8 explains TSO by exactly the
    /// forwarding eliminations (E-RAW/E-RAR) plus W→R reordering, and an
    /// irrelevant read constrains no other thread — together with the
    /// tail eliminations of never-observed release/external actions.
    /// The *write* eliminations (cases 4–6) are **not** claimed: under
    /// a buffered model, removing a write changes which stores sit in
    /// the buffer, and neither §8 nor the follow-up TSO-validity work
    /// extends their safety proof to that setting, so this table is
    /// conservative and flags them.
    #[must_use]
    pub const fn safe_under(self, model: transafety_traces::MemoryModelKind) -> bool {
        use transafety_traces::MemoryModelKind as Mk;
        match model {
            Mk::Sc => true,
            Mk::Tso | Mk::Pso => matches!(
                self,
                EliminationKind::ReadAfterRead
                    | EliminationKind::ReadAfterWrite
                    | EliminationKind::IrrelevantRead
                    | EliminationKind::RedundantRelease
                    | EliminationKind::RedundantExternal
            ),
        }
    }
}

impl fmt::Display for EliminationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EliminationKind::ReadAfterRead => "redundant read after read",
            EliminationKind::ReadAfterWrite => "redundant read after write",
            EliminationKind::IrrelevantRead => "irrelevant read",
            EliminationKind::WriteAfterRead => "redundant write after read",
            EliminationKind::OverwrittenWrite => "overwritten write",
            EliminationKind::RedundantLastWrite => "redundant last write",
            EliminationKind::RedundantRelease => "redundant release",
            EliminationKind::RedundantExternal => "redundant external action",
        };
        f.write_str(s)
    }
}

// --- classification helpers on wildcard elements ------------------------

pub(crate) fn is_release(e: &WildAction) -> bool {
    match e {
        WildAction::Concrete(a) => a.is_release(),
        WildAction::WildcardRead(_) => false,
    }
}

pub(crate) fn is_acquire(e: &WildAction) -> bool {
    match e {
        WildAction::Concrete(a) => a.is_acquire(),
        WildAction::WildcardRead(l) => l.is_volatile(),
    }
}

pub(crate) fn is_sync(e: &WildAction) -> bool {
    is_release(e) || is_acquire(e)
}

pub(crate) fn is_external(e: &WildAction) -> bool {
    matches!(e, WildAction::Concrete(a) if a.is_external())
}

pub(crate) fn is_write_to(e: &WildAction, l: Loc) -> bool {
    matches!(e, WildAction::Concrete(a) if a.is_write() && a.loc() == Some(l))
}

pub(crate) fn is_access_to(e: &WildAction, l: Loc) -> bool {
    e.loc() == Some(l)
}

/// Is there a release–acquire pair strictly between `lo` and `hi` in the
/// wildcard trace (Definition 1's "release-acquire pair between")?
pub(crate) fn release_acquire_pair_between(t: &WildTrace, lo: usize, hi: usize) -> bool {
    let hi = hi.min(t.len());
    let Some(r) = (lo + 1..hi).find(|&r| is_release(&t.elements()[r])) else {
        return false;
    };
    (r + 1..hi).any(|a| is_acquire(&t.elements()[a]))
}

fn write_to_between(t: &WildTrace, l: Loc, lo: usize, hi: usize) -> bool {
    let hi = hi.min(t.len());
    (lo + 1..hi).any(|i| is_write_to(&t.elements()[i], l))
}

fn access_to_between(t: &WildTrace, l: Loc, lo: usize, hi: usize) -> bool {
    let hi = hi.min(t.len());
    (lo + 1..hi).any(|i| is_access_to(&t.elements()[i], l))
}

/// Computes every [`EliminationKind`] under which index `i` of the
/// wildcard trace `t` is eliminable (Definition 1).
///
/// Returns the empty vector when `i` is not eliminable (or out of range).
#[must_use]
pub fn eliminable_kinds(t: &WildTrace, i: usize) -> Vec<EliminationKind> {
    use transafety_traces::Action;

    let mut kinds = Vec::new();
    let Some(e) = t.elements().get(i) else {
        return kinds;
    };
    match e {
        WildAction::WildcardRead(l) => {
            if !l.is_volatile() {
                kinds.push(EliminationKind::IrrelevantRead);
            }
        }
        WildAction::Concrete(Action::Read { loc, value }) if !loc.is_volatile() => {
            for j in (0..i).rev() {
                match t.elements()[j] {
                    // Case 1: earlier read of the same value.
                    WildAction::Concrete(Action::Read { loc: l2, value: v2 })
                        if l2 == *loc && v2 == *value =>
                    {
                        if !release_acquire_pair_between(t, j, i)
                            && !write_to_between(t, *loc, j, i)
                        {
                            kinds.push(EliminationKind::ReadAfterRead);
                        }
                    }
                    // Case 2: earlier write of the same value.
                    WildAction::Concrete(Action::Write { loc: l2, value: v2 })
                        if l2 == *loc && v2 == *value =>
                    {
                        if !release_acquire_pair_between(t, j, i)
                            && !write_to_between(t, *loc, j, i)
                        {
                            kinds.push(EliminationKind::ReadAfterWrite);
                        }
                    }
                    _ => continue,
                }
            }
            kinds.sort();
            kinds.dedup();
        }
        WildAction::Concrete(Action::Write { loc, value }) if !loc.is_volatile() => {
            // Case 4: earlier read of the same value with clean interval.
            if (0..i).any(|j| {
                matches!(t.elements()[j],
                    WildAction::Concrete(Action::Read { loc: l2, value: v2 })
                        if l2 == *loc && v2 == *value)
                    && !release_acquire_pair_between(t, j, i)
                    && !access_to_between(t, *loc, j, i)
            }) {
                kinds.push(EliminationKind::WriteAfterRead);
            }
            // Case 5: later write to the same location with clean interval.
            if (i + 1..t.len()).any(|j| {
                matches!(t.elements()[j],
                    WildAction::Concrete(Action::Write { loc: l2, .. }) if l2 == *loc)
                    && !release_acquire_pair_between(t, i, j)
                    && !access_to_between(t, *loc, i, j)
            }) {
                kinds.push(EliminationKind::OverwrittenWrite);
            }
            // Case 6: redundant last write.
            let tail = &t.elements()[i + 1..];
            if !tail.iter().any(is_release) && !tail.iter().any(|e2| is_access_to(e2, *loc)) {
                kinds.push(EliminationKind::RedundantLastWrite);
            }
        }
        WildAction::Concrete(a) => {
            let tail = &t.elements()[i + 1..];
            let clean = !tail.iter().any(|e2| is_sync(e2) || is_external(e2));
            // Case 7: redundant release.
            if a.is_release() && clean {
                kinds.push(EliminationKind::RedundantRelease);
            }
            // Case 8: redundant external.
            if a.is_external() && clean {
                kinds.push(EliminationKind::RedundantExternal);
            }
        }
    }
    kinds
}

/// Is index `i` eliminable in `t` under any kind (Definition 1)?
#[must_use]
pub fn is_eliminable(t: &WildTrace, i: usize) -> bool {
    !eliminable_kinds(t, i).is_empty()
}

/// Is index `i` *properly* eliminable in `t` (kinds 1–5 only, §6.1)?
#[must_use]
pub fn is_properly_eliminable(t: &WildTrace, i: usize) -> bool {
    eliminable_kinds(t, i).iter().any(|k| k.is_proper())
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_traces::{Action, Monitor, ThreadId, Value};

    fn x() -> Loc {
        Loc::normal(0)
    }
    fn y() -> Loc {
        Loc::normal(1)
    }
    fn v(n: u32) -> Value {
        Value::new(n)
    }
    fn start() -> WildAction {
        Action::start(ThreadId::new(0)).into()
    }

    /// The §4 example: [S(0), W[x=1], R[y=*], R[x=1], X(1), L[m], W[x=2],
    /// W[x=1], U[m]] — eliminable indices are 2, 3 and 6.
    fn paper_example() -> WildTrace {
        let m = Monitor::new(0);
        WildTrace::from_elements([
            start(),
            Action::write(x(), v(1)).into(),
            WildAction::wildcard_read(y()),
            Action::read(x(), v(1)).into(),
            Action::external(v(1)).into(),
            Action::lock(m).into(),
            Action::write(x(), v(2)).into(),
            Action::write(x(), v(1)).into(),
            Action::unlock(m).into(),
        ])
    }

    #[test]
    fn paper_example_eliminable_indices() {
        let t = paper_example();
        // §4's prose lists 2, 3 and 6 (the indices its elimination uses).
        // The trailing unlock at 8 is additionally eliminable by case 7
        // (a redundant release, trivially sound: dropping the final
        // element yields a member of the prefix-closed traceset).
        let eliminable: Vec<usize> = (0..t.len()).filter(|&i| is_eliminable(&t, i)).collect();
        assert_eq!(eliminable, vec![2, 3, 6, 8]);
        assert_eq!(
            eliminable_kinds(&t, 2),
            vec![EliminationKind::IrrelevantRead]
        );
        assert_eq!(
            eliminable_kinds(&t, 3),
            vec![EliminationKind::ReadAfterWrite]
        );
        assert_eq!(
            eliminable_kinds(&t, 6),
            vec![EliminationKind::OverwrittenWrite]
        );
    }

    #[test]
    fn read_after_read() {
        let t = WildTrace::from_elements([
            start(),
            Action::read(x(), v(1)).into(),
            Action::read(x(), v(1)).into(),
        ]);
        assert_eq!(
            eliminable_kinds(&t, 2),
            vec![EliminationKind::ReadAfterRead]
        );
        // different value: not eliminable
        let t2 = WildTrace::from_elements([
            start(),
            Action::read(x(), v(1)).into(),
            Action::read(x(), v(2)).into(),
        ]);
        assert!(eliminable_kinds(&t2, 2).is_empty());
    }

    #[test]
    fn intervening_write_blocks_read_elimination() {
        let t = WildTrace::from_elements([
            start(),
            Action::read(x(), v(1)).into(),
            Action::write(x(), v(2)).into(),
            Action::read(x(), v(1)).into(),
        ]);
        assert!(eliminable_kinds(&t, 3).is_empty());
    }

    #[test]
    fn release_acquire_pair_blocks_elimination() {
        let m = Monitor::new(0);
        // R[x=1]; U[m]; L[m]; R[x=1] — the unlock/lock pair blocks case 1.
        let t = WildTrace::from_elements([
            start(),
            Action::lock(m).into(),
            Action::read(x(), v(1)).into(),
            Action::unlock(m).into(),
            Action::lock(m).into(),
            Action::read(x(), v(1)).into(),
        ]);
        assert!(eliminable_kinds(&t, 5).is_empty());
        // a release alone does not block
        let t2 = WildTrace::from_elements([
            start(),
            Action::lock(m).into(),
            Action::read(x(), v(1)).into(),
            Action::unlock(m).into(),
            Action::read(x(), v(1)).into(),
        ]);
        assert_eq!(
            eliminable_kinds(&t2, 4),
            vec![EliminationKind::ReadAfterRead]
        );
    }

    #[test]
    fn write_after_read() {
        // r:=x (reads 1); x:=1 — the write is redundant.
        let t = WildTrace::from_elements([
            start(),
            Action::read(x(), v(1)).into(),
            Action::write(x(), v(1)).into(),
        ]);
        assert!(eliminable_kinds(&t, 2).contains(&EliminationKind::WriteAfterRead));
        // an intervening write to x blocks it (and there is no other read
        // of the written value to justify the elimination)
        let t2 = WildTrace::from_elements([
            start(),
            Action::read(x(), v(1)).into(),
            Action::write(x(), v(2)).into(),
            Action::write(x(), v(1)).into(),
        ]);
        assert!(!eliminable_kinds(&t2, 3).contains(&EliminationKind::WriteAfterRead));
    }

    #[test]
    fn overwritten_write_is_the_earlier_one() {
        let t = WildTrace::from_elements([
            start(),
            Action::write(x(), v(1)).into(),
            Action::write(x(), v(2)).into(),
        ]);
        assert!(eliminable_kinds(&t, 1).contains(&EliminationKind::OverwrittenWrite));
        // the later write is a redundant last write instead
        assert_eq!(
            eliminable_kinds(&t, 2),
            vec![EliminationKind::RedundantLastWrite]
        );
    }

    #[test]
    fn volatile_accesses_are_never_eliminable() {
        let vl = Loc::volatile(5);
        let t = WildTrace::from_elements([
            start(),
            Action::read(vl, v(1)).into(),
            Action::read(vl, v(1)).into(),
            Action::write(vl, v(1)).into(),
        ]);
        assert!(eliminable_kinds(&t, 2).is_empty());
        // ... except that a trailing volatile write is a redundant release
        assert_eq!(
            eliminable_kinds(&t, 3),
            vec![EliminationKind::RedundantRelease]
        );
        // and a volatile wildcard read is not an irrelevant read
        let t2 = WildTrace::from_elements([start(), WildAction::wildcard_read(vl)]);
        assert!(eliminable_kinds(&t2, 1).is_empty());
    }

    #[test]
    fn redundant_last_write_requires_clean_tail() {
        let m = Monitor::new(0);
        // write followed by an unlock (a release): not a last write.
        let t = WildTrace::from_elements([
            start(),
            Action::lock(m).into(),
            Action::write(x(), v(1)).into(),
            Action::unlock(m).into(),
        ]);
        assert!(eliminable_kinds(&t, 2).is_empty());
        // write followed only by unrelated accesses: eliminable.
        let t2 = WildTrace::from_elements([
            start(),
            Action::write(x(), v(1)).into(),
            Action::read(y(), v(0)).into(),
        ]);
        assert!(eliminable_kinds(&t2, 1).contains(&EliminationKind::RedundantLastWrite));
    }

    #[test]
    fn redundant_release_and_external() {
        let m = Monitor::new(0);
        let t = WildTrace::from_elements([
            start(),
            Action::external(v(1)).into(),
            Action::lock(m).into(),
            Action::unlock(m).into(),
        ]);
        // the unlock is last: redundant release
        assert_eq!(
            eliminable_kinds(&t, 3),
            vec![EliminationKind::RedundantRelease]
        );
        // the external at 1 is followed by sync actions: not eliminable
        assert!(eliminable_kinds(&t, 1).is_empty());
        let t2 = WildTrace::from_elements([
            start(),
            Action::external(v(1)).into(),
            Action::read(x(), v(0)).into(),
        ]);
        assert_eq!(
            eliminable_kinds(&t2, 1),
            vec![EliminationKind::RedundantExternal]
        );
    }

    #[test]
    fn proper_kinds_are_cases_one_to_five() {
        let proper: Vec<bool> = EliminationKind::ALL.iter().map(|k| k.is_proper()).collect();
        assert_eq!(
            proper,
            vec![true, true, true, true, true, false, false, false]
        );
    }

    #[test]
    fn model_safety_table() {
        use transafety_traces::MemoryModelKind;
        // SC: the paper's main theorem covers every kind.
        assert!(EliminationKind::ALL
            .iter()
            .all(|k| k.safe_under(MemoryModelKind::Sc)));
        // TSO/PSO: read and tail eliminations are covered, the write
        // eliminations are conservatively flagged.
        for model in [MemoryModelKind::Tso, MemoryModelKind::Pso] {
            assert!(EliminationKind::ReadAfterWrite.safe_under(model));
            assert!(EliminationKind::ReadAfterRead.safe_under(model));
            assert!(!EliminationKind::OverwrittenWrite.safe_under(model));
            assert!(!EliminationKind::WriteAfterRead.safe_under(model));
            assert!(!EliminationKind::RedundantLastWrite.safe_under(model));
        }
    }

    #[test]
    fn start_actions_are_never_eliminable() {
        let t = WildTrace::from_elements([start()]);
        assert!(eliminable_kinds(&t, 0).is_empty());
        assert!(eliminable_kinds(&t, 7).is_empty(), "out of range is empty");
    }
}

#[cfg(test)]
mod compositionality_tests {
    //! §6.1: proper eliminability composes under trace concatenation —
    //! the reason the syntactic relation excludes last-action kinds.

    use super::*;
    use transafety_traces::{Action, Monitor, ThreadId, Value};

    fn x() -> Loc {
        Loc::normal(0)
    }
    fn v(n: u32) -> Value {
        Value::new(n)
    }

    #[test]
    fn proper_kinds_survive_concatenation() {
        // t1 has a properly eliminable redundant read (index 2).
        let t1: Vec<WildAction> = vec![
            Action::start(ThreadId::new(0)).into(),
            Action::read(x(), v(1)).into(),
            Action::read(x(), v(1)).into(),
        ];
        // t2 is an arbitrary continuation, including synchronisation.
        let m = Monitor::new(0);
        let t2: Vec<WildAction> = vec![
            Action::lock(m).into(),
            Action::write(x(), v(2)).into(),
            Action::unlock(m).into(),
            Action::external(v(2)).into(),
        ];
        let whole = WildTrace::from_elements(t1.iter().chain(t2.iter()).copied());
        let prefix = WildTrace::from_elements(t1.iter().copied());
        assert!(is_properly_eliminable(&prefix, 2));
        assert!(
            is_properly_eliminable(&whole, 2),
            "proper eliminability is stable under appending a continuation"
        );
    }

    #[test]
    fn last_action_kinds_do_not_survive_concatenation() {
        // In isolation, the trailing write is a redundant last write …
        let t1: Vec<WildAction> = vec![
            Action::start(ThreadId::new(0)).into(),
            Action::write(x(), v(1)).into(),
        ];
        let prefix = WildTrace::from_elements(t1.iter().copied());
        assert_eq!(
            eliminable_kinds(&prefix, 1),
            vec![EliminationKind::RedundantLastWrite]
        );
        // … but appending a read of it destroys the justification.
        let t2: Vec<WildAction> = vec![Action::read(x(), v(1)).into()];
        let whole = WildTrace::from_elements(t1.iter().chain(t2.iter()).copied());
        assert!(
            !eliminable_kinds(&whole, 1).contains(&EliminationKind::RedundantLastWrite),
            "last-action eliminations are not compositional (the §6.1 point)"
        );
    }

    #[test]
    fn proper_eliminability_is_stable_under_prefixing() {
        // prepending a (disjoint) prefix cannot break the backward-looking
        // justification of a proper elimination
        let suffix: Vec<WildAction> = vec![
            Action::read(x(), v(1)).into(),
            Action::read(x(), v(1)).into(),
        ];
        let t = WildTrace::from_elements(suffix.iter().copied());
        assert!(is_properly_eliminable(&t, 1));
        let y = Loc::normal(9);
        let prefixed = WildTrace::from_elements(
            [
                Action::start(ThreadId::new(0)).into(),
                Action::write(y, v(3)).into(),
            ]
            .into_iter()
            .chain(suffix.iter().copied()),
        );
        assert!(is_properly_eliminable(&prefixed, 3));
    }
}
