//! The TSO and PSO machines as [`MemoryModel`] backends.
//!
//! These adapters put the crate's operational machines behind the
//! pluggable backend trait of `transafety-lang`, so the generic
//! [`ModelExplorer`](transafety_lang::ModelExplorer) — and through it
//! the checker's `Analysis` pipeline with budgets, panic isolation,
//! interning and metrics — runs the buffered semantics unchanged.
//!
//! Partial-order reduction is deliberately **not** implemented here:
//! the inherited [`MemoryModel::reduced_moves`] default explores the
//! full move set, because the SC ample-set soundness argument does not
//! transfer to buffered machines (a "private" write still interacts
//! with the writing thread's own buffer order). Likewise
//! [`MemoryModel::search_fuel`] keeps its fuel-bounded default: with
//! loops, store buffers grow without bound, so the race search and the
//! census must be fuel-layered to terminate (SC overrides this; the
//! buffered models must not).

use transafety_lang::{ExploreOptions, MemoryModel, ModelMove, MoveLabel, Program};
use transafety_traces::{Action, MemoryModelKind, ThreadId};

use crate::machine::{program_has_loops, TsoExplorer, TsoMove, TsoState};
use crate::pso::{PsoExplorer, PsoMove, PsoState};

/// The TSO machine (per-thread FIFO store buffers, store-to-load
/// forwarding, fencing volatiles/locks) as a [`MemoryModel`] backend.
///
/// # Example
///
/// Run the store-buffering litmus test through the generic engine:
///
/// ```
/// use transafety_lang::{parse_program, ExploreOptions, ModelExplorer, ProgramExplorer};
/// use transafety_traces::Value;
/// use transafety_tso::TsoModel;
///
/// let src = "x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;";
/// let p = parse_program(src)?.program;
/// let opts = ExploreOptions::default();
/// let sc = ProgramExplorer::new(&p).behaviours(&opts).value;
/// let model = TsoModel::new(&p);
/// let tso = ModelExplorer::new(&model).behaviours(&opts).value;
/// let zero_zero = vec![Value::new(0), Value::new(0)];
/// assert!(!sc.contains(&zero_zero));
/// assert!(tso.contains(&zero_zero));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct TsoModel<'p> {
    explorer: TsoExplorer<'p>,
    loops: bool,
}

impl<'p> TsoModel<'p> {
    /// Creates the TSO backend for the program.
    #[must_use]
    pub fn new(program: &'p Program) -> Self {
        TsoModel {
            explorer: TsoExplorer::new(program),
            loops: program_has_loops(program),
        }
    }
}

impl MemoryModel for TsoModel<'_> {
    type State = TsoState;

    fn kind(&self) -> MemoryModelKind {
        MemoryModelKind::Tso
    }

    fn initial(&self) -> TsoState {
        self.explorer.initial()
    }

    fn moves(
        &self,
        state: &TsoState,
        opts: &ExploreOptions,
        truncated: &mut bool,
    ) -> Vec<ModelMove<TsoState>> {
        self.explorer
            .moves(state, opts, truncated)
            .into_iter()
            .map(|mv| {
                let next = self.explorer.apply(state, &mv);
                match mv {
                    TsoMove::Start { thread } => ModelMove {
                        thread,
                        label: MoveLabel::Action(Action::start(ThreadId::new(thread as u32))),
                        next,
                    },
                    TsoMove::Act { thread, action, .. } => ModelMove {
                        thread,
                        label: MoveLabel::Action(action),
                        next,
                    },
                    TsoMove::Flush { thread } => ModelMove {
                        thread,
                        label: MoveLabel::Flush(None),
                        next,
                    },
                }
            })
            .collect()
    }

    fn fuel(&self, opts: &ExploreOptions) -> usize {
        if self.loops {
            opts.max_actions
        } else {
            usize::MAX
        }
    }
}

/// The PSO machine (per-thread **per-location** FIFO store buffers) as
/// a [`MemoryModel`] backend; see [`TsoModel`] for usage. Flush moves
/// carry the drained location in their
/// [`MoveLabel::Flush`](transafety_lang::MoveLabel) label, so a PSO
/// witness schedule shows which buffer drained at each step.
#[derive(Debug)]
pub struct PsoModel<'p> {
    explorer: PsoExplorer<'p>,
    loops: bool,
}

impl<'p> PsoModel<'p> {
    /// Creates the PSO backend for the program.
    #[must_use]
    pub fn new(program: &'p Program) -> Self {
        PsoModel {
            explorer: PsoExplorer::new(program),
            loops: program_has_loops(program),
        }
    }
}

impl MemoryModel for PsoModel<'_> {
    type State = PsoState;

    fn kind(&self) -> MemoryModelKind {
        MemoryModelKind::Pso
    }

    fn initial(&self) -> PsoState {
        self.explorer.initial()
    }

    fn moves(
        &self,
        state: &PsoState,
        opts: &ExploreOptions,
        truncated: &mut bool,
    ) -> Vec<ModelMove<PsoState>> {
        self.explorer
            .moves(state, opts, truncated)
            .into_iter()
            .map(|mv| {
                let next = self.explorer.apply(state, &mv);
                match mv {
                    PsoMove::Start { thread } => ModelMove {
                        thread,
                        label: MoveLabel::Action(Action::start(ThreadId::new(thread as u32))),
                        next,
                    },
                    PsoMove::Act { thread, action, .. } => ModelMove {
                        thread,
                        label: MoveLabel::Action(action),
                        next,
                    },
                    PsoMove::Flush { thread, loc } => ModelMove {
                        thread,
                        label: MoveLabel::Flush(Some(loc)),
                        next,
                    },
                }
            })
            .collect()
    }

    fn fuel(&self, opts: &ExploreOptions) -> usize {
        if self.loops {
            opts.max_actions
        } else {
            usize::MAX
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::{parse_program, ModelExplorer};
    use transafety_traces::Value;

    fn v(n: u32) -> Value {
        Value::new(n)
    }

    #[test]
    fn trait_engine_matches_deprecated_shims() {
        #![allow(deprecated)]
        for src in [
            "x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;",
            "x := 1; flag := 1; || r1 := flag; r2 := x; print r1; print r2;",
            "lock m; x := 1; r1 := x; unlock m; print r1; \
             || lock m; x := 2; r2 := x; unlock m; print r2;",
        ] {
            let p = parse_program(src).unwrap().program;
            let opts = ExploreOptions::default();
            let tso_model = TsoModel::new(&p);
            let via_trait = ModelExplorer::new(&tso_model).behaviours(&opts);
            let via_shim = TsoExplorer::new(&p).behaviours(&opts);
            assert_eq!(via_trait.value, via_shim.value, "{src}");
            assert_eq!(via_trait.complete, via_shim.complete, "{src}");
            let pso_model = PsoModel::new(&p);
            let pso_trait = ModelExplorer::new(&pso_model).behaviours(&opts);
            let pso_shim = PsoExplorer::new(&p).behaviours(&opts);
            assert_eq!(pso_trait.value, pso_shim.value, "{src}");
        }
    }

    #[test]
    fn tso_race_witness_schedule_shows_flushes() {
        // SB races on both locations; the TSO witness must interleave
        // buffered writes and flushes consistently with its actions.
        let src = "x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;";
        let p = parse_program(src).unwrap().program;
        let model = TsoModel::new(&p);
        let w = ModelExplorer::new(&model)
            .race_witness(&ExploreOptions::default())
            .expect("SB races under TSO");
        let actions = w.schedule.iter().filter(|s| !s.label.is_flush()).count();
        assert_eq!(
            actions,
            w.witness.execution.events().len(),
            "schedule actions mirror the witness events"
        );
    }

    #[test]
    fn drf_program_has_no_tso_race() {
        let src = "lock m; x := 1; unlock m; || lock m; r1 := x; unlock m; print r1;";
        let p = parse_program(src).unwrap().program;
        let model = TsoModel::new(&p);
        assert!(ModelExplorer::new(&model)
            .race_witness(&ExploreOptions::default())
            .is_none());
    }

    #[test]
    fn census_terminates_on_loopy_program_via_search_fuel() {
        // A spin loop makes TSO buffers unbounded in principle; the
        // fuel-layered census must still terminate.
        let src = "x := 1; flag := 1; || while (flag != 1) { r9 := r9; } r2 := x; print r2;";
        let p = parse_program(src).unwrap().program;
        let opts = ExploreOptions {
            max_actions: 6,
            ..ExploreOptions::default()
        };
        let model = TsoModel::new(&p);
        let n = ModelExplorer::new(&model).count_reachable_states(&opts);
        assert!(n > 0);
    }

    #[test]
    fn pso_divergence_from_tso_through_trait_engine() {
        let src = "x := 1; flag := 1; || r1 := flag; r2 := x; print r1; print r2;";
        let p = parse_program(src).unwrap().program;
        let opts = ExploreOptions::default();
        let stale = vec![v(1), v(0)];
        let tso_model = TsoModel::new(&p);
        let pso_model = PsoModel::new(&p);
        let tso = ModelExplorer::new(&tso_model).behaviours(&opts).value;
        let pso = ModelExplorer::new(&pso_model).behaviours(&opts).value;
        assert!(!tso.contains(&stale), "TSO keeps store order");
        assert!(pso.contains(&stale), "PSO reorders the two stores");
    }
}
