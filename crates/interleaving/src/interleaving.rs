//! Interleavings and the sequential-consistency / data-race conditions.

use std::fmt;

use transafety_traces::{Action, Loc, Monitor, ThreadId, Trace, Traceset, Value};

use crate::{Event, HappensBefore};

/// An interleaving: a finite sequence of [`Event`]s (§3 of the paper).
///
/// The §3 judgements are methods:
///
/// * [`trace_of`](Interleaving::trace_of) — the trace of a thread in the
///   interleaving;
/// * [`is_interleaving_of`](Interleaving::is_interleaving_of) — thread
///   traces are members, start actions are consistent, and lock actions
///   respect mutual exclusion;
/// * [`sees_most_recent_write`](Interleaving::sees_most_recent_write) and
///   [`is_sequentially_consistent`](Interleaving::is_sequentially_consistent)
///   — the SC conditions; an interleaving of `T` that is sequentially
///   consistent is an *execution* of `T`;
/// * [`first_adjacent_race`](Interleaving::first_adjacent_race) — the
///   adjacent-conflict data-race condition;
/// * [`happens_before`](Interleaving::happens_before) — the partial order
///   used by the alternative race definition
///   ([`hb_unordered_conflicts`](Interleaving::hb_unordered_conflicts)).
///
/// # Example
///
/// ```
/// use transafety_traces::{Action, Loc, ThreadId, Value};
/// use transafety_interleaving::{Event, Interleaving};
/// let x = Loc::normal(0);
/// let t0 = ThreadId::new(0);
/// let t1 = ThreadId::new(1);
/// let i = Interleaving::from_events([
///     Event::new(t0, Action::start(t0)),
///     Event::new(t1, Action::start(t1)),
///     Event::new(t0, Action::write(x, Value::new(1))),
///     Event::new(t1, Action::read(x, Value::new(1))),
/// ]);
/// assert!(i.is_sequentially_consistent());
/// // W then R of the same location by different threads, adjacent: a race.
/// assert_eq!(i.first_adjacent_race(), Some(2));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Interleaving {
    events: Vec<Event>,
}

impl Interleaving {
    /// Creates an empty interleaving.
    #[must_use]
    pub fn new() -> Self {
        Interleaving { events: Vec::new() }
    }

    /// Creates an interleaving from events.
    #[must_use]
    pub fn from_events<I: IntoIterator<Item = Event>>(events: I) -> Self {
        Interleaving {
            events: events.into_iter().collect(),
        }
    }

    /// The events as a slice.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The length of the interleaving.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` for the empty interleaving.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event at index `i`, if in range.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&Event> {
        self.events.get(i)
    }

    /// Iterates over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// Appends an event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// The prefix of length `n`.
    #[must_use]
    pub fn prefix(&self, n: usize) -> Interleaving {
        Interleaving {
            events: self.events[..n.min(self.len())].to_vec(),
        }
    }

    /// The trace of thread `θ` in the interleaving:
    /// `[A(p) | p ∈ I. T(p) = θ]`.
    #[must_use]
    pub fn trace_of(&self, thread: ThreadId) -> Trace {
        self.events
            .iter()
            .filter(|e| e.thread() == thread)
            .map(Event::action)
            .collect()
    }

    /// The threads occurring in the interleaving, sorted.
    #[must_use]
    pub fn threads(&self) -> Vec<ThreadId> {
        let mut out: Vec<ThreadId> = self.events.iter().map(Event::thread).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The behaviour: the values of external actions, in order.
    #[must_use]
    pub fn behaviour(&self) -> Vec<Value> {
        self.events
            .iter()
            .filter(|e| e.action().is_external())
            .map(|e| e.action().value().expect("external action carries a value"))
            .collect()
    }

    /// Is this an interleaving *of* the given traceset?
    ///
    /// Checks the three conditions of §3: every thread's trace is a member
    /// of `t`; every start action `S(θ)` is performed by thread `θ`; and
    /// every lock respects mutual exclusion (when a thread locks `m`,
    /// every *other* thread has unlocked `m` as often as it locked it).
    #[must_use]
    pub fn is_interleaving_of(&self, t: &Traceset) -> bool {
        for thread in self.threads() {
            if !t.contains(&self.trace_of(thread)) {
                return false;
            }
        }
        for (i, e) in self.events.iter().enumerate() {
            if let Action::Start(entry) = e.action() {
                if entry != e.thread() {
                    return false;
                }
            }
            if let Action::Lock(m) = e.action() {
                if !self.mutual_exclusion_holds_at(i, m, e.thread()) {
                    return false;
                }
            }
        }
        true
    }

    fn mutual_exclusion_holds_at(&self, i: usize, m: Monitor, locker: ThreadId) -> bool {
        // For each other thread: #locks of m before i == #unlocks of m before i.
        let mut balance: std::collections::BTreeMap<ThreadId, i64> = Default::default();
        for e in &self.events[..i] {
            match e.action() {
                Action::Lock(m2) if m2 == m => *balance.entry(e.thread()).or_insert(0) += 1,
                Action::Unlock(m2) if m2 == m => *balance.entry(e.thread()).or_insert(0) -= 1,
                _ => {}
            }
        }
        balance.iter().all(|(&t, &b)| t == locker || b == 0)
    }

    /// Does index `r` *see* write `w` (§3)? True when `I_r = R[l=v]`,
    /// `I_w = W[l=v]`, `w < r` and no write to `l` lies strictly between.
    #[must_use]
    pub fn sees_write(&self, r: usize, w: usize) -> bool {
        let (Some(re), Some(we)) = (self.events.get(r), self.events.get(w)) else {
            return false;
        };
        let (Action::Read { loc, value }, Action::Write { loc: wl, value: wv }) =
            (re.action(), we.action())
        else {
            return false;
        };
        loc == wl
            && value == wv
            && w < r
            && !self.events[w + 1..r]
                .iter()
                .any(|e| e.action().is_write() && e.action().loc() == Some(loc))
    }

    /// Does index `r` see the default (zero) value: a read of the default
    /// value with no earlier write to the same location?
    #[must_use]
    pub fn sees_default(&self, r: usize) -> bool {
        let Some(e) = self.events.get(r) else {
            return false;
        };
        let Action::Read { loc, value } = e.action() else {
            return false;
        };
        value == Value::ZERO
            && !self.events[..r]
                .iter()
                .any(|p| p.action().is_write() && p.action().loc() == Some(loc))
    }

    /// Does index `r` see the most recent write: it is not a read, or it
    /// sees the default value, or it sees some write?
    #[must_use]
    pub fn sees_most_recent_write(&self, r: usize) -> bool {
        let Some(e) = self.events.get(r) else {
            return false;
        };
        if !e.action().is_read() {
            return true;
        }
        if self.sees_default(r) {
            return true;
        }
        (0..r).rev().any(|w| self.sees_write(r, w))
    }

    /// Is the interleaving sequentially consistent (every index sees the
    /// most recent write)? SC interleavings of `T` are the *executions*
    /// of `T`.
    #[must_use]
    pub fn is_sequentially_consistent(&self) -> bool {
        (0..self.len()).all(|i| self.sees_most_recent_write(i))
    }

    /// The first index violating sequential consistency, if any.
    #[must_use]
    pub fn first_sc_violation(&self) -> Option<usize> {
        (0..self.len()).find(|&i| !self.sees_most_recent_write(i))
    }

    /// The adjacent-conflict data race check: returns the first index `i`
    /// such that `I_i` and `I_{i+1}` are conflicting actions of different
    /// threads.
    #[must_use]
    pub fn first_adjacent_race(&self) -> Option<usize> {
        (0..self.len().saturating_sub(1)).find(|&i| {
            let (a, b) = (&self.events[i], &self.events[i + 1]);
            a.thread() != b.thread() && a.action().conflicts_with(&b.action())
        })
    }

    /// Returns `true` if the interleaving has an adjacent-conflict data
    /// race.
    #[must_use]
    pub fn has_data_race(&self) -> bool {
        self.first_adjacent_race().is_some()
    }

    /// Builds the happens-before partial order of this interleaving: the
    /// transitive closure of program order and synchronises-with.
    #[must_use]
    pub fn happens_before(&self) -> HappensBefore {
        HappensBefore::of(self)
    }

    /// All pairs `(i, j)`, `i < j`, of conflicting accesses not ordered by
    /// happens-before. Non-empty results witness a data race under the
    /// alternative §3 definition.
    #[must_use]
    pub fn hb_unordered_conflicts(&self) -> Vec<(usize, usize)> {
        let hb = self.happens_before();
        let mut out = Vec::new();
        for i in 0..self.len() {
            for j in i + 1..self.len() {
                let (a, b) = (self.events[i].action(), self.events[j].action());
                if a.conflicts_with(&b) && !hb.ordered(i, j) && !hb.ordered(j, i) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// The indices of all writes to `l`, in order.
    #[must_use]
    pub fn writes_to(&self, l: Loc) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| {
                self.events[i].action().is_write() && self.events[i].action().loc() == Some(l)
            })
            .collect()
    }
}

impl FromIterator<Event> for Interleaving {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        Interleaving::from_events(iter)
    }
}

impl Extend<Event> for Interleaving {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl std::ops::Index<usize> for Interleaving {
    type Output = Event;

    fn index(&self, i: usize) -> &Event {
        &self.events[i]
    }
}

impl<'a> IntoIterator for &'a Interleaving {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl fmt::Display for Interleaving {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_traces::Domain;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x() -> Loc {
        Loc::normal(0)
    }
    fn y() -> Loc {
        Loc::normal(1)
    }
    fn v(n: u32) -> Value {
        Value::new(n)
    }

    /// The execution I' from Fig. 5 of the paper (with l0 for y and the
    /// volatile location v9 for v):
    /// [(0,S(0)), (1,S(1)), (0,W[y=1]), (1,R[v=0]), (1,X(0))]
    fn fig5_execution() -> Interleaving {
        let vol = Loc::volatile(9);
        Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(1), Action::start(t(1))),
            Event::new(t(0), Action::write(y(), v(1))),
            Event::new(t(1), Action::read(vol, v(0))),
            Event::new(t(1), Action::external(v(0))),
        ])
    }

    #[test]
    fn trace_projection() {
        let i = fig5_execution();
        assert_eq!(i.trace_of(t(0)).len(), 2);
        assert_eq!(i.trace_of(t(1)).len(), 3);
        assert_eq!(i.trace_of(t(7)).len(), 0);
        assert_eq!(i.threads(), vec![t(0), t(1)]);
    }

    #[test]
    fn fig5_execution_is_sequentially_consistent() {
        let i = fig5_execution();
        assert!(i.is_sequentially_consistent());
        assert!(
            i.sees_default(3),
            "volatile read of 0 with no writes sees default"
        );
        assert_eq!(i.first_sc_violation(), None);
        assert_eq!(i.behaviour(), vec![v(0)]);
    }

    #[test]
    fn sc_violation_detected() {
        let i = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(0), Action::write(x(), v(1))),
            Event::new(t(0), Action::read(x(), v(0))),
        ]);
        assert!(!i.is_sequentially_consistent());
        assert_eq!(i.first_sc_violation(), Some(2));
        // reading the written value is fine
        let j = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(0), Action::write(x(), v(1))),
            Event::new(t(0), Action::read(x(), v(1))),
        ]);
        assert!(j.is_sequentially_consistent());
        assert!(j.sees_write(2, 1));
    }

    #[test]
    fn sees_write_requires_no_intervening_write() {
        let i = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(0), Action::write(x(), v(1))),
            Event::new(t(0), Action::write(x(), v(2))),
            Event::new(t(0), Action::read(x(), v(1))),
        ]);
        assert!(!i.sees_write(3, 1), "W[x=2] intervenes");
        assert!(!i.sees_most_recent_write(3));
    }

    #[test]
    fn adjacent_race_detection() {
        let i = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(1), Action::start(t(1))),
            Event::new(t(0), Action::write(x(), v(1))),
            Event::new(t(1), Action::read(x(), v(1))),
        ]);
        assert_eq!(i.first_adjacent_race(), Some(2));
        // same-thread adjacency is not a race
        let j = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(0), Action::write(x(), v(1))),
            Event::new(t(0), Action::read(x(), v(1))),
        ]);
        assert!(!j.has_data_race());
        // volatile accesses never race
        let vol = Loc::volatile(2);
        let k = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(1), Action::start(t(1))),
            Event::new(t(0), Action::write(vol, v(1))),
            Event::new(t(1), Action::read(vol, v(1))),
        ]);
        assert!(!k.has_data_race());
    }

    #[test]
    fn hb_unordered_conflicts_agree_with_adjacent_definition_here() {
        // Unsynchronised conflicting accesses by different threads.
        let i = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(1), Action::start(t(1))),
            Event::new(t(0), Action::write(x(), v(1))),
            Event::new(t(1), Action::read(x(), v(1))),
        ]);
        assert_eq!(i.hb_unordered_conflicts(), vec![(2, 3)]);
        // With a release-acquire (unlock/lock) pair between them: ordered.
        let m = Monitor::new(0);
        let j = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(1), Action::start(t(1))),
            Event::new(t(0), Action::lock(m)),
            Event::new(t(0), Action::write(x(), v(1))),
            Event::new(t(0), Action::unlock(m)),
            Event::new(t(1), Action::lock(m)),
            Event::new(t(1), Action::read(x(), v(1))),
            Event::new(t(1), Action::unlock(m)),
        ]);
        assert!(j.hb_unordered_conflicts().is_empty());
        assert!(!j.has_data_race());
    }

    #[test]
    fn interleaving_of_traceset() {
        let d = Domain::zero_to(1);
        let mut ts = Traceset::new();
        for val in d.iter() {
            ts.insert(Trace::from_actions([
                Action::start(t(0)),
                Action::write(y(), v(1)),
            ]))
            .unwrap();
            ts.insert(Trace::from_actions([
                Action::start(t(1)),
                Action::read(y(), val),
            ]))
            .unwrap();
        }
        let ok = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(1), Action::start(t(1))),
            Event::new(t(0), Action::write(y(), v(1))),
            Event::new(t(1), Action::read(y(), v(1))),
        ]);
        assert!(ok.is_interleaving_of(&ts));
        // Wrong thread performing a start action:
        let bad = Interleaving::from_events([Event::new(t(1), Action::start(t(0)))]);
        assert!(!bad.is_interleaving_of(&ts));
        // Trace not in the traceset:
        let bad2 = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(0), Action::write(y(), v(2))),
        ]);
        assert!(!bad2.is_interleaving_of(&ts));
    }

    #[test]
    fn mutual_exclusion_enforced() {
        let m = Monitor::new(0);
        let mut ts = Traceset::new();
        for th in [t(0), t(1)] {
            ts.insert(Trace::from_actions([
                Action::start(th),
                Action::lock(m),
                Action::unlock(m),
            ]))
            .unwrap();
        }
        // thread 1 locks while thread 0 still holds m
        let bad = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(1), Action::start(t(1))),
            Event::new(t(0), Action::lock(m)),
            Event::new(t(1), Action::lock(m)),
        ]);
        assert!(!bad.is_interleaving_of(&ts));
        let good = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(1), Action::start(t(1))),
            Event::new(t(0), Action::lock(m)),
            Event::new(t(0), Action::unlock(m)),
            Event::new(t(1), Action::lock(m)),
            Event::new(t(1), Action::unlock(m)),
        ]);
        assert!(good.is_interleaving_of(&ts));
    }

    #[test]
    fn writes_to_lists_indices() {
        let i = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(0), Action::write(x(), v(1))),
            Event::new(t(0), Action::write(y(), v(1))),
            Event::new(t(0), Action::write(x(), v(2))),
        ]);
        assert_eq!(i.writes_to(x()), vec![1, 3]);
        assert_eq!(i.writes_to(y()), vec![2]);
    }

    #[test]
    fn display_form() {
        let i = Interleaving::from_events([Event::new(t(0), Action::start(t(0)))]);
        assert_eq!(i.to_string(), "[(0, S(0))]");
    }
}
