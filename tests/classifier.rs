//! Integration tests for the transformation classifier: every syntactic
//! rewrite of every (small) corpus program must land in a paper-safe
//! class, and the classifier must place known-unsafe transformations
//! outside them.

use transafety::checker::{classify_transformation, Analysis, TransformationClass};
use transafety::lang::Reg;
use transafety::litmus::{by_name, corpus};
use transafety::syntactic::{all_rewrites, introduce_irrelevant_read};
use transafety::traces::Domain;

fn opts() -> Analysis {
    Analysis::with_domain(Domain::zero_to(1))
}

#[test]
fn corpus_rewrites_classify_as_paper_safe() {
    let opts = opts();
    let mut classified = 0;
    for l in corpus() {
        let p = l.parse().program;
        if p.threads().iter().flatten().count() > 8 {
            continue;
        }
        for rw in all_rewrites(&p).into_iter().take(6) {
            let class = classify_transformation(&rw.result, &p, &opts);
            if class == TransformationClass::Inconclusive {
                continue;
            }
            assert!(
                class.is_paper_safe(),
                "{}: {rw} classified as {class}",
                l.name
            );
            classified += 1;
        }
    }
    assert!(classified > 15, "classified only {classified} rewrites");
}

#[test]
fn rule_families_map_to_expected_classes() {
    let opts = opts();
    let p = by_name("redundant-load-pair").unwrap().parse().program;
    for rw in all_rewrites(&p) {
        let class = classify_transformation(&rw.result, &p, &opts);
        if rw.rule.is_trace_preserving() {
            assert_eq!(class, TransformationClass::Identity, "{rw}");
        } else if rw.rule.is_elimination() {
            assert_eq!(class, TransformationClass::Elimination, "{rw}");
        } else {
            assert!(class.is_paper_safe(), "{rw}: {class}");
        }
    }
}

#[test]
fn read_introduction_classifies_outside_safe_classes() {
    let a = by_name("fig3-a").unwrap().parse();
    let y = a.symbols.loc("y").unwrap();
    let b = introduce_irrelevant_read(&a.program, 0, 0, y, Reg::new(777)).unwrap();
    let class = classify_transformation(&b, &a.program, &opts());
    assert_eq!(class, TransformationClass::ScRefiningOnly);
    assert!(!class.is_paper_safe());
}

#[test]
fn reversed_pairs_are_not_automatically_safe() {
    // classification is directional: the fig1 pair in reverse (treating
    // the optimised program as the original) is not an elimination.
    let (o, t) = transafety::litmus::parse_pair("fig1-original", "fig1-transformed");
    let class = classify_transformation(&o.program, &t.program, &opts());
    assert!(
        !class.is_paper_safe(),
        "un-eliminating must not classify as safe: {class}"
    );
}
