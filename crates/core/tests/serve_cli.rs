//! End-to-end tests of `drfcheck serve`: the JSON-lines protocol over
//! stdin/stdout and a Unix socket, graceful drain on SIGINT/SIGTERM,
//! the idempotent-SIGINT hard exit, the `--timeout 0` usage error, and
//! the golden schema of the `serve` stats section.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const RACY: &str = "x := 1; || r0 := x; print r0;";
const DRF: &str = "volatile v; v := 1; || r0 := v; print r0;";

fn spawn_serve(args: &[&str], envs: &[(&str, &str)]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_drfcheck"));
    cmd.args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.spawn().expect("drfcheck serve spawns")
}

/// Runs one batch session: writes `input` to stdin, closes it, returns
/// (stdout lines, stderr, exit code).
fn serve_batch(
    args: &[&str],
    envs: &[(&str, &str)],
    input: &str,
) -> (Vec<String>, String, Option<i32>) {
    let mut child = spawn_serve(args, envs);
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("request lines written");
    let out = child.wait_with_output().expect("serve session ends");
    (
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .map(str::to_owned)
            .collect(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

fn signal(child: &Child, sig: &str) {
    let status = Command::new("kill")
        .args([sig, &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill {sig} delivered");
}

fn request(id: &str, program: &str) -> String {
    format!("{{\"id\":\"{id}\",\"program\":\"{program}\"}}\n")
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("drfcheck-serve-cli-{tag}-{}", std::process::id()))
}

#[test]
fn batch_session_over_stdin_answers_every_request() {
    let input = format!(
        "{}{}{{\"id\":\"zero\",\"program\":\"x := 1;\",\"timeout_ms\":0}}\n{}",
        request("racy", RACY),
        request("drf", DRF),
        "not json at all\n"
    );
    let (lines, stderr, code) = serve_batch(&["serve", "--no-cache"], &[], &input);
    assert_eq!(code, Some(0), "clean EOF drain exits 0: {stderr}");
    assert_eq!(lines.len(), 4, "{lines:?}");
    let find = |id: &str| {
        lines
            .iter()
            .find(|l| l.contains(&format!("\"id\":\"{id}\"")))
            .unwrap_or_else(|| panic!("no response for {id}: {lines:?}"))
    };
    assert!(find("racy").contains("\"verdict\":\"racy\""));
    assert!(find("drf").contains("\"verdict\":\"drf_proven\""));
    let zero = find("zero");
    assert!(
        zero.contains("\"status\":\"error\"") && zero.contains("must be positive"),
        "per-request zero timeout is a request error, not a budget trip: {zero}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"status\":\"error\"") && l.contains("\"id\":\"4\"")),
        "the unparseable line got an error response keyed by admission number: {lines:?}"
    );
}

#[test]
fn verdict_cache_hits_across_sessions_and_for_renamed_programs() {
    let dir = tmp_path("cache");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap();
    let (first, _, code) =
        serve_batch(&["serve", "--cache-dir", dir_s], &[], &request("cold", DRF));
    assert_eq!(code, Some(0));
    assert!(first[0].contains("\"cached\":false"), "{first:?}");
    // Same program, renamed location and register, new process.
    let renamed = "volatile w; w := 1; || r9 := w; print r9;";
    let (second, _, _) = serve_batch(
        &["serve", "--cache-dir", dir_s],
        &[],
        &request("warm", renamed),
    );
    assert!(
        second[0].contains("\"cached\":true"),
        "renamed program must hit the cache: {second:?}"
    );
    // Same program under another model: its own verdict, not the hit.
    let (tso, _, _) = serve_batch(
        &["--model", "tso", "serve", "--cache-dir", dir_s],
        &[],
        &request("othermodel", DRF),
    );
    assert!(
        tso[0].contains("\"cached\":false"),
        "model is part of the key: {tso:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn timeout_zero_is_a_usage_error_not_a_budget_trip() {
    let out = Command::new(env!("CARGO_BIN_EXE_drfcheck"))
        .args(["--timeout", "0", "check", "sb"])
        .output()
        .expect("drfcheck runs");
    assert_eq!(out.status.code(), Some(2), "usage error, not exit 4");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--timeout: must be positive"), "{stderr}");
    assert!(
        !stderr.contains("truncated"),
        "no analysis may have started: {stderr}"
    );
    // Degenerate caps get the same treatment.
    let out = Command::new(env!("CARGO_BIN_EXE_drfcheck"))
        .args(["--max-states", "0", "check", "sb"])
        .output()
        .expect("drfcheck runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn serve_stats_json_matches_the_golden_schema() {
    let golden: Vec<String> = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/serve_stats_schema.txt"),
    )
    .expect("golden schema file exists")
    .lines()
    .map(str::to_owned)
    .filter(|l| !l.is_empty())
    .collect();
    let stats_out = tmp_path("stats.json");
    let _ = std::fs::remove_file(&stats_out);
    let input = format!("{}{}", request("a", RACY), request("b", DRF));
    let (lines, _, code) = serve_batch(
        &[
            "--stats=json",
            "serve",
            "--no-cache",
            "--stats-out",
            stats_out.to_str().unwrap(),
        ],
        &[],
        &input,
    );
    assert_eq!(code, Some(0));
    let stats_line = lines
        .iter()
        .find(|l| l.starts_with("{\"schema\":\"drfcheck-stats-v2\",\"section\":\"serve\""))
        .expect("stats line present on stdout");
    // `--stats-out` writes the identical line for CI artifact upload.
    let from_file = std::fs::read_to_string(&stats_out).expect("--stats-out file written");
    assert_eq!(from_file.trim_end(), stats_line.as_str());
    let inner = stats_line
        .strip_prefix("{\"schema\":\"drfcheck-stats-v2\",\"section\":\"serve\",\"serve\":{")
        .and_then(|s| s.strip_suffix("}}"))
        .expect("serve section envelope");
    let mut keys = Vec::new();
    for pair in inner.split(',') {
        let (k, v) = pair.split_once(':').expect("key:value");
        keys.push(k.trim_matches('"').to_owned());
        let n: u64 = v
            .parse()
            .expect("all serve counters are non-negative integers");
        let _ = n;
    }
    assert_eq!(
        keys, golden,
        "serve section keys drifted from the golden schema"
    );
    let field = |k: &str| {
        inner
            .split(',')
            .find(|p| p.starts_with(&format!("\"{k}\":")))
            .and_then(|p| p.split_once(':'))
            .and_then(|(_, v)| v.parse::<u64>().ok())
            .unwrap()
    };
    assert_eq!(field("requests"), 2);
    assert_eq!(field("responses_ok"), 2);
    assert_eq!(field("latency_count"), 2);
    let _ = std::fs::remove_file(&stats_out);
}

#[test]
fn sigint_drains_gracefully_with_exit_4() {
    // One request holds the only worker (slow fault), one sits queued.
    // SIGINT must: answer the in-flight one as truncated/cancelled,
    // answer the queued one as cancelled, exit 4 — well before the
    // 5-second stall would end naturally.
    let mut child = spawn_serve(
        &[
            "serve",
            "--no-cache",
            "--workers",
            "1",
            "--fault-plan",
            "slow@*:5000",
        ],
        &[],
    );
    let mut stdin = child.stdin.take().expect("stdin piped");
    stdin
        .write_all(format!("{}{}", request("inflight", DRF), request("queued", DRF)).as_bytes())
        .expect("requests written");
    stdin.flush().unwrap();
    std::thread::sleep(Duration::from_millis(500));
    let start = Instant::now();
    signal(&child, "-INT");
    drop(stdin);
    let out = child.wait_with_output().expect("drain completes");
    let elapsed = start.elapsed();
    assert_eq!(out.status.code(), Some(4), "drained session exits 4");
    assert!(
        elapsed < Duration::from_secs(30),
        "drain must not hang: {elapsed:?}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"id\":\"queued\"") && stdout.contains("\"status\":\"cancelled\""),
        "queued request answered as cancelled: {stdout}"
    );
    assert!(
        stdout.contains("\"id\":\"inflight\""),
        "in-flight request flushed: {stdout}"
    );
    assert!(
        !stdout.contains("drf_proven"),
        "a drained run must not claim a proof: {stdout}"
    );
}

#[test]
fn second_sigint_hard_exits_immediately() {
    // The worker is stuck in a 60s injected stall (uninterruptible by
    // the cooperative drain). The first SIGINT starts the graceful
    // drain; the second must not wait for it.
    let mut child = spawn_serve(
        &["serve", "--no-cache", "--workers", "1"],
        &[("DRFCHECK_FAULTS", "slow@*:60000")],
    );
    let mut stdin = child.stdin.take().expect("stdin piped");
    stdin.write_all(request("stuck", DRF).as_bytes()).unwrap();
    stdin.flush().unwrap();
    std::thread::sleep(Duration::from_millis(500));
    signal(&child, "-INT");
    std::thread::sleep(Duration::from_millis(200));
    let start = Instant::now();
    signal(&child, "-INT");
    let out = child.wait_with_output().expect("hard exit");
    let elapsed = start.elapsed();
    assert_eq!(
        out.status.code(),
        Some(4),
        "hard exit keeps the interrupt code"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "second SIGINT must exit at once, not after the 60s stall: {elapsed:?}"
    );
}

#[test]
fn socket_session_serves_multiple_clients_and_drains_on_sigterm() {
    let sock = tmp_path("sock");
    let _ = std::fs::remove_file(&sock);
    let child = spawn_serve(
        &["serve", "--no-cache", "--socket", sock.to_str().unwrap()],
        &[],
    );
    // Wait for the listener to come up.
    let deadline = Instant::now() + Duration::from_secs(30);
    let connect = || std::os::unix::net::UnixStream::connect(&sock);
    let mut conn = loop {
        match connect() {
            Ok(c) => break c,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            Err(e) => panic!("socket never came up: {e}"),
        }
    };
    conn.write_all(request("c1", RACY).as_bytes()).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("response on the same connection");
    assert!(
        line.contains("\"id\":\"c1\"") && line.contains("\"verdict\":\"racy\""),
        "{line}"
    );
    // A second, concurrent client on the same server.
    let mut conn2 = connect().expect("second client connects");
    conn2.write_all(request("c2", DRF).as_bytes()).unwrap();
    let mut reader2 = BufReader::new(conn2.try_clone().unwrap());
    let mut line2 = String::new();
    reader2
        .read_line(&mut line2)
        .expect("second client answered");
    assert!(
        line2.contains("\"id\":\"c2\"") && line2.contains("drf_proven"),
        "{line2}"
    );
    // SIGTERM drains the whole session.
    signal(&child, "-TERM");
    let out = child.wait_with_output().expect("socket session drains");
    assert_eq!(out.status.code(), Some(4), "signal-initiated drain exits 4");
    assert!(!sock.exists(), "socket file removed on clean drain");
    // Connections see EOF after the drain.
    let mut rest = String::new();
    let _ = reader.read_to_string(&mut rest);
}
