//! The TSO and PSO machines as [`MemoryModel`] backends.
//!
//! These adapters put the crate's operational machines behind the
//! pluggable backend trait of `transafety-lang`, so the generic
//! [`ModelExplorer`](transafety_lang::ModelExplorer) — and through it
//! the checker's `Analysis` pipeline with budgets, panic isolation,
//! interning and metrics — runs the buffered semantics unchanged.
//!
//! Partial-order reduction **is** implemented here, for the
//! [`ReductionGoal::Behaviours`] goal only. Two ample-set shapes are
//! proven for the buffered machines and checked dynamically per state:
//!
//! - **Commuting flush** ([`ExpansionKind::AmpleFlush`]): a flush by
//!   thread `k` of location `pl` is a singleton ample set when no other
//!   thread has `pl` in its remaining-code footprint or its own buffer.
//!   Store-to-load forwarding makes the drain invisible to `k`'s own
//!   reads, and the condition excludes every other observer, so the
//!   flush commutes with all concurrently reachable moves; it strictly
//!   shrinks a buffer, so it can never close a cycle.
//! - **Invisible act** ([`ExpansionKind::Ample`]): the dynamic
//!   invisibility of the SC reduction, lifted to buffers — a
//!   non-volatile write is always invisible (it only appends to the
//!   writer's own buffer), a read is invisible when forwarded from the
//!   own buffer or when no other thread can ever write (or has
//!   buffered) the location, and locks/outputs are invisible when no
//!   other thread uses the monitor/emits output. The ast-size cycle
//!   proviso of `transafety-lang` ([`CfgMeta`]) gates the choice, so
//!   the reduction stays sound on loop-bearing programs.
//!
//! For [`ReductionGoal::Races`] both models return the **full**
//! expansion: the adjacent-conflict witness argument needs the tracked
//! access and the racing access to be separated only by moves that
//! never touch their location, and an ample flush of that very
//! location would change the read values (and can enable/disable the
//! fence actions) of the reordered witness. Likewise
//! [`MemoryModel::search_fuel`] keeps its fuel-bounded default: with
//! loops, store buffers grow without bound, so the race search and the
//! census must be fuel-layered to terminate (SC overrides this; the
//! buffered models must not).

use std::sync::{Arc, Mutex};

use transafety_interleaving::intern::FxHashMap;
use transafety_interleaving::metrics::ExpansionKind;
use transafety_lang::{
    program_loops_are_awaits, CfgMeta, ExploreOptions, MemoryModel, ModelMove, MoveLabel, Program,
    Reduced, ReductionGoal, ThreadConfig,
};
use transafety_traces::{Action, Loc, MemoryModelKind, ThreadId};

use crate::machine::{program_has_loops, TsoExplorer, TsoMove, TsoState};
use crate::pso::{PsoExplorer, PsoMove, PsoState};

/// Memoised remaining-code footprints ([`CfgMeta`]) keyed by thread
/// configuration, shared by all phases of one model's exploration. The
/// meta of a configuration is a pure function of its code, so the memo
/// only saves recomputation and never changes the reduced move choice.
#[derive(Debug, Default)]
struct MetaCache {
    /// Whole-body metas, one per thread (the footprint of a thread
    /// that has not started yet).
    initial: Vec<Arc<CfgMeta>>,
    memo: Mutex<FxHashMap<ThreadConfig, Arc<CfgMeta>>>,
}

impl MetaCache {
    fn new(program: &Program) -> Self {
        MetaCache {
            initial: program
                .threads()
                .iter()
                .map(|body| Arc::new(CfgMeta::of_code(body)))
                .collect(),
            memo: Mutex::new(FxHashMap::default()),
        }
    }

    /// The footprint of thread `k`'s remaining code: the whole body
    /// before its start move, empty once it is done.
    fn of_slot(&self, slot: Option<&ThreadConfig>, k: usize) -> Arc<CfgMeta> {
        match slot {
            None => Arc::clone(&self.initial[k]),
            Some(cfg) => {
                let mut memo = self.memo.lock().expect("meta memo poisoned");
                Arc::clone(
                    memo.entry(cfg.clone())
                        .or_insert_with(|| Arc::new(CfgMeta::of_code(cfg.code()))),
                )
            }
        }
    }
}

/// What the shared buffered-machine reduction needs from a state: the
/// per-thread configurations and buffer contents.
trait BufferedState {
    fn cfg(&self, k: usize) -> Option<&ThreadConfig>;
    fn has_buffered(&self, k: usize, loc: Loc) -> bool;
    /// The location a `Flush(None)` label drains (FIFO machines only;
    /// per-location machines carry the location in the label).
    fn fifo_flush_loc(&self, k: usize) -> Option<Loc>;
}

impl BufferedState for TsoState {
    fn cfg(&self, k: usize) -> Option<&ThreadConfig> {
        TsoState::cfg(self, k)
    }
    fn has_buffered(&self, k: usize, loc: Loc) -> bool {
        TsoState::has_buffered(self, k, loc)
    }
    fn fifo_flush_loc(&self, k: usize) -> Option<Loc> {
        TsoState::flush_loc(self, k)
    }
}

impl BufferedState for PsoState {
    fn cfg(&self, k: usize) -> Option<&ThreadConfig> {
        PsoState::cfg(self, k)
    }
    fn has_buffered(&self, k: usize, loc: Loc) -> bool {
        PsoState::has_buffered(self, k, loc)
    }
    fn fifo_flush_loc(&self, _k: usize) -> Option<Loc> {
        None
    }
}

/// The Behaviours-goal reduction shared by the TSO and PSO backends:
/// prefer a commuting flush, then a dynamically invisible act move
/// that passes the ast-size cycle proviso, else the full expansion
/// ([`ExpansionKind::FullProviso`] when only the proviso blocked a
/// singleton). Every ample move strictly decreases the measure
/// `Σ 2·ast_size + Σ buffered stores` (a start move fires at most once
/// per thread), so no cycle of the reduced graph is ample-only and the
/// ignoring problem cannot arise.
fn reduce_buffered<S: BufferedState>(
    cache: &MetaCache,
    state: &S,
    threads: usize,
    mut moves: Vec<ModelMove<S>>,
) -> (Vec<ModelMove<S>>, ExpansionKind) {
    let metas: Vec<Arc<CfgMeta>> = (0..threads)
        .map(|j| cache.of_slot(state.cfg(j), j))
        .collect();
    // Commuting-flush singleton: nobody but the flusher can ever
    // observe the drained location.
    let ample_flush = moves.iter().position(|mv| {
        let MoveLabel::Flush(label_loc) = mv.label else {
            return false;
        };
        let k = mv.thread;
        let pl = label_loc
            .or_else(|| state.fifo_flush_loc(k))
            .expect("an enabled flush has a buffered store");
        (0..threads)
            .all(|j| j == k || (!metas[j].accesses.contains(&pl) && !state.has_buffered(j, pl)))
    });
    if let Some(i) = ample_flush {
        let mv = moves.swap_remove(i);
        return (vec![mv], ExpansionKind::AmpleFlush);
    }
    // Invisible-act singleton, gated by the cycle proviso.
    let mut saw_invisible = false;
    for i in 0..moves.len() {
        let mv = &moves[i];
        let MoveLabel::Action(action) = mv.label else {
            continue;
        };
        let k = mv.thread;
        let invisible = match action {
            Action::Start(_) => true,
            Action::Read { loc, .. } | Action::Write { loc, .. } if loc.is_volatile() => false,
            Action::Read { loc, .. } => {
                // Forwarded reads are value-fixed by the own buffer;
                // otherwise no other thread may ever write (or have
                // buffered) the location.
                state.has_buffered(k, loc)
                    || (0..threads).all(|j| {
                        j == k || (!metas[j].writes.contains(&loc) && !state.has_buffered(j, loc))
                    })
            }
            // A non-volatile write only appends to the writer's own
            // buffer; its visibility happens at the (separate) flush.
            Action::Write { .. } => true,
            Action::Lock(m) | Action::Unlock(m) => {
                (0..threads).all(|j| j == k || !metas[j].monitors.contains(&m))
            }
            Action::External(_) => (0..threads).all(|j| j == k || !metas[j].externals),
        };
        if !invisible {
            continue;
        }
        saw_invisible = true;
        let proviso_ok = match action {
            // A start can fire at most once per thread, so it can
            // never lie on a cycle of the reduced graph.
            Action::Start(_) => true,
            _ => {
                let next = cache.of_slot(mv.next.cfg(k), k);
                next.ast_size < metas[k].ast_size
            }
        };
        if proviso_ok {
            let mv = moves.swap_remove(i);
            return (vec![mv], ExpansionKind::Ample);
        }
    }
    let kind = if saw_invisible {
        ExpansionKind::FullProviso
    } else {
        ExpansionKind::Full
    };
    (moves, kind)
}

/// The behaviour-goal await stutter collapse for the buffered machines
/// (the analogue of the SC engine's collapse; see
/// [`ExploreOptions::awaits`]): drops an act-read of an await-watched
/// location whose successor is exactly the current machine state. The
/// self-loop test compares *whole* states — configurations, memory
/// **and buffers** — so a spin that must still observe its own store
/// buffer is untouched: a forwarded read that exits the loop changes
/// the configuration, and until the guard register materialises the
/// first re-read changes it too. Returns `(collapsed, wakeups)`.
fn collapse_awaits_buffered<S: BufferedState + PartialEq>(
    cache: &MetaCache,
    state: &S,
    moves: &mut Vec<ModelMove<S>>,
) -> (u64, u64) {
    let mut collapsed = 0u64;
    let mut wakeups = 0u64;
    moves.retain(|mv| {
        let MoveLabel::Action(Action::Read { loc, .. }) = mv.label else {
            return true;
        };
        if !cache
            .of_slot(state.cfg(mv.thread), mv.thread)
            .awaits
            .contains(&loc)
        {
            return true;
        }
        if mv.next == *state {
            collapsed += 1;
            false
        } else {
            wakeups += 1;
            true
        }
    });
    (collapsed, wakeups)
}

/// The TSO machine (per-thread FIFO store buffers, store-to-load
/// forwarding, fencing volatiles/locks) as a [`MemoryModel`] backend.
///
/// # Example
///
/// Run the store-buffering litmus test through the generic engine:
///
/// ```
/// use transafety_lang::{parse_program, ExploreOptions, ModelExplorer, ProgramExplorer};
/// use transafety_traces::Value;
/// use transafety_tso::TsoModel;
///
/// let src = "x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;";
/// let p = parse_program(src)?.program;
/// let opts = ExploreOptions::default();
/// let sc = ProgramExplorer::new(&p).behaviours(&opts).value;
/// let model = TsoModel::new(&p);
/// let tso = ModelExplorer::new(&model).behaviours(&opts).value;
/// let zero_zero = vec![Value::new(0), Value::new(0)];
/// assert!(!sc.contains(&zero_zero));
/// assert!(tso.contains(&zero_zero));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct TsoModel<'p> {
    explorer: TsoExplorer<'p>,
    loops: bool,
    awaits_only: bool,
    threads: usize,
    meta: MetaCache,
}

impl<'p> TsoModel<'p> {
    /// Creates the TSO backend for the program.
    #[must_use]
    pub fn new(program: &'p Program) -> Self {
        TsoModel {
            explorer: TsoExplorer::new(program),
            loops: program_has_loops(program),
            awaits_only: program_loops_are_awaits(program),
            threads: program.thread_count(),
            meta: MetaCache::new(program),
        }
    }
}

impl MemoryModel for TsoModel<'_> {
    type State = TsoState;

    fn kind(&self) -> MemoryModelKind {
        MemoryModelKind::Tso
    }

    fn initial(&self) -> TsoState {
        self.explorer.initial()
    }

    fn moves(
        &self,
        state: &TsoState,
        opts: &ExploreOptions,
        truncated: &mut bool,
    ) -> Vec<ModelMove<TsoState>> {
        self.explorer
            .moves(state, opts, truncated)
            .into_iter()
            .map(|mv| {
                let next = self.explorer.apply(state, &mv);
                match mv {
                    TsoMove::Start { thread } => ModelMove {
                        thread,
                        label: MoveLabel::Action(Action::start(ThreadId::new(thread as u32))),
                        next,
                    },
                    TsoMove::Act { thread, action, .. } => ModelMove {
                        thread,
                        label: MoveLabel::Action(action),
                        next,
                    },
                    TsoMove::Flush { thread } => ModelMove {
                        thread,
                        label: MoveLabel::Flush(None),
                        next,
                    },
                }
            })
            .collect()
    }

    fn reduced_moves(
        &self,
        state: &TsoState,
        goal: ReductionGoal,
        opts: &ExploreOptions,
        truncated: &mut bool,
    ) -> Reduced<TsoState> {
        let mut moves = self.moves(state, opts, truncated);
        // The await collapse is orthogonal to the POR: it applies to
        // the behaviour goal even with `por == false` (it is a stutter
        // removal, not an ample-set choice), and never to the race
        // goal (a spin read can race).
        let (await_collapsed, await_wakeups) = if goal == ReductionGoal::Behaviours && opts.awaits {
            collapse_awaits_buffered(&self.meta, state, &mut moves)
        } else {
            (0, 0)
        };
        if !opts.por || goal == ReductionGoal::Races {
            return Reduced {
                moves,
                kind: ExpansionKind::Full,
                await_collapsed,
                await_wakeups,
            };
        }
        let (moves, kind) = reduce_buffered(&self.meta, state, self.threads, moves);
        Reduced {
            moves,
            kind,
            await_collapsed,
            await_wakeups,
        }
    }

    fn fuel(&self, opts: &ExploreOptions) -> usize {
        // An await-only program keeps every store outside loops, so
        // buffers are bounded and the collapsed behaviour graph is
        // acyclic (see `transafety_lang::program_loops_are_awaits`):
        // the exploration is exact without an action bound.
        if !self.loops || (opts.awaits && self.awaits_only) {
            usize::MAX
        } else {
            opts.max_actions
        }
    }
}

/// The PSO machine (per-thread **per-location** FIFO store buffers) as
/// a [`MemoryModel`] backend; see [`TsoModel`] for usage. Flush moves
/// carry the drained location in their
/// [`MoveLabel::Flush`](transafety_lang::MoveLabel) label, so a PSO
/// witness schedule shows which buffer drained at each step.
#[derive(Debug)]
pub struct PsoModel<'p> {
    explorer: PsoExplorer<'p>,
    loops: bool,
    awaits_only: bool,
    threads: usize,
    meta: MetaCache,
}

impl<'p> PsoModel<'p> {
    /// Creates the PSO backend for the program.
    #[must_use]
    pub fn new(program: &'p Program) -> Self {
        PsoModel {
            explorer: PsoExplorer::new(program),
            loops: program_has_loops(program),
            awaits_only: program_loops_are_awaits(program),
            threads: program.thread_count(),
            meta: MetaCache::new(program),
        }
    }
}

impl MemoryModel for PsoModel<'_> {
    type State = PsoState;

    fn kind(&self) -> MemoryModelKind {
        MemoryModelKind::Pso
    }

    fn initial(&self) -> PsoState {
        self.explorer.initial()
    }

    fn moves(
        &self,
        state: &PsoState,
        opts: &ExploreOptions,
        truncated: &mut bool,
    ) -> Vec<ModelMove<PsoState>> {
        self.explorer
            .moves(state, opts, truncated)
            .into_iter()
            .map(|mv| {
                let next = self.explorer.apply(state, &mv);
                match mv {
                    PsoMove::Start { thread } => ModelMove {
                        thread,
                        label: MoveLabel::Action(Action::start(ThreadId::new(thread as u32))),
                        next,
                    },
                    PsoMove::Act { thread, action, .. } => ModelMove {
                        thread,
                        label: MoveLabel::Action(action),
                        next,
                    },
                    PsoMove::Flush { thread, loc } => ModelMove {
                        thread,
                        label: MoveLabel::Flush(Some(loc)),
                        next,
                    },
                }
            })
            .collect()
    }

    fn reduced_moves(
        &self,
        state: &PsoState,
        goal: ReductionGoal,
        opts: &ExploreOptions,
        truncated: &mut bool,
    ) -> Reduced<PsoState> {
        let mut moves = self.moves(state, opts, truncated);
        // Same split as the TSO backend: collapse for behaviours only,
        // independent of the POR flag.
        let (await_collapsed, await_wakeups) = if goal == ReductionGoal::Behaviours && opts.awaits {
            collapse_awaits_buffered(&self.meta, state, &mut moves)
        } else {
            (0, 0)
        };
        if !opts.por || goal == ReductionGoal::Races {
            return Reduced {
                moves,
                kind: ExpansionKind::Full,
                await_collapsed,
                await_wakeups,
            };
        }
        let (moves, kind) = reduce_buffered(&self.meta, state, self.threads, moves);
        Reduced {
            moves,
            kind,
            await_collapsed,
            await_wakeups,
        }
    }

    fn fuel(&self, opts: &ExploreOptions) -> usize {
        // See `TsoModel::fuel`: await-only programs have bounded
        // buffers and an acyclic collapsed behaviour graph.
        if !self.loops || (opts.awaits && self.awaits_only) {
            usize::MAX
        } else {
            opts.max_actions
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::{parse_program, ModelExplorer};
    use transafety_traces::Value;

    fn v(n: u32) -> Value {
        Value::new(n)
    }

    #[test]
    fn behaviours_reduction_agrees_with_full_expansion() {
        for src in [
            "x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;",
            "x := 1; flag := 1; || r1 := flag; r2 := x; print r1; print r2;",
            "lock m; x := 1; r1 := x; unlock m; print r1; \
             || lock m; x := 2; r2 := x; unlock m; print r2;",
            "a := 1; a := 2; r0 := a; x := r0; || r1 := x; b := r1; print r1;",
            "volatile f; x := 1; f := 1; || r1 := f; if (r1 == 1) { r2 := x; print r2; }",
        ] {
            let p = parse_program(src).unwrap().program;
            let on = ExploreOptions::default();
            let off = ExploreOptions {
                por: false,
                ..ExploreOptions::default()
            };
            let tso_model = TsoModel::new(&p);
            let tso = ModelExplorer::new(&tso_model);
            assert_eq!(tso.behaviours(&on), tso.behaviours(&off), "tso {src}");
            let pso_model = PsoModel::new(&p);
            let pso = ModelExplorer::new(&pso_model);
            assert_eq!(pso.behaviours(&on), pso.behaviours(&off), "pso {src}");
        }
    }

    #[test]
    fn behaviours_reduction_is_sound_on_loopy_programs() {
        // Spin loops keep buffered machines fuel-bounded; the ast-size
        // proviso must keep the reduced truncated behaviour set equal
        // to the unreduced one at the same fuel.
        let src = "x := 1; flag := 1; || while (flag != 1) { r9 := r9; } r2 := x; print r2;";
        let p = parse_program(src).unwrap().program;
        for max_actions in [4, 6, 8] {
            let on = ExploreOptions {
                max_actions,
                ..ExploreOptions::default()
            };
            let off = ExploreOptions {
                por: false,
                max_actions,
                ..ExploreOptions::default()
            };
            let tso_model = TsoModel::new(&p);
            let tso = ModelExplorer::new(&tso_model);
            assert_eq!(
                tso.behaviours(&on),
                tso.behaviours(&off),
                "tso @{max_actions}"
            );
            let pso_model = PsoModel::new(&p);
            let pso = ModelExplorer::new(&pso_model);
            assert_eq!(
                pso.behaviours(&on),
                pso.behaviours(&off),
                "pso @{max_actions}"
            );
        }
    }

    #[test]
    fn race_phase_ignores_por_flag_on_buffered_models() {
        // The race goal always gets the full expansion, so the witness
        // is identical with and without POR.
        let src = "x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;";
        let p = parse_program(src).unwrap().program;
        let on = ExploreOptions::default();
        let off = ExploreOptions {
            por: false,
            ..ExploreOptions::default()
        };
        let model = TsoModel::new(&p);
        let ex = ModelExplorer::new(&model);
        assert_eq!(ex.race_witness(&on), ex.race_witness(&off));
        assert!(ex.race_witness(&on).is_some(), "SB races under TSO");
    }

    #[test]
    fn tso_race_witness_schedule_shows_flushes() {
        // SB races on both locations; the TSO witness must interleave
        // buffered writes and flushes consistently with its actions.
        let src = "x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;";
        let p = parse_program(src).unwrap().program;
        let model = TsoModel::new(&p);
        let w = ModelExplorer::new(&model)
            .race_witness(&ExploreOptions::default())
            .expect("SB races under TSO");
        let actions = w.schedule.iter().filter(|s| !s.label.is_flush()).count();
        assert_eq!(
            actions,
            w.witness.execution.events().len(),
            "schedule actions mirror the witness events"
        );
    }

    #[test]
    fn drf_program_has_no_tso_race() {
        let src = "lock m; x := 1; unlock m; || lock m; r1 := x; unlock m; print r1;";
        let p = parse_program(src).unwrap().program;
        let model = TsoModel::new(&p);
        assert!(ModelExplorer::new(&model)
            .race_witness(&ExploreOptions::default())
            .is_none());
    }

    #[test]
    fn census_terminates_on_loopy_program_via_search_fuel() {
        // A spin loop makes TSO buffers unbounded in principle; the
        // fuel-layered census must still terminate.
        let src = "x := 1; flag := 1; || while (flag != 1) { r9 := r9; } r2 := x; print r2;";
        let p = parse_program(src).unwrap().program;
        let opts = ExploreOptions {
            max_actions: 6,
            ..ExploreOptions::default()
        };
        let model = TsoModel::new(&p);
        let n = ModelExplorer::new(&model).count_reachable_states(&opts);
        assert!(n > 0);
    }

    #[test]
    fn pso_divergence_from_tso_through_trait_engine() {
        let src = "x := 1; flag := 1; || r1 := flag; r2 := x; print r1; print r2;";
        let p = parse_program(src).unwrap().program;
        let opts = ExploreOptions::default();
        let stale = vec![v(1), v(0)];
        let tso_model = TsoModel::new(&p);
        let pso_model = PsoModel::new(&p);
        let tso = ModelExplorer::new(&tso_model).behaviours(&opts).value;
        let pso = ModelExplorer::new(&pso_model).behaviours(&opts).value;
        assert!(!tso.contains(&stale), "TSO keeps store order");
        assert!(pso.contains(&stale), "PSO reorders the two stores");
    }
}
