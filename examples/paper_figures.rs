//! Regenerates every figure-level claim of the paper (experiments E1–E7
//! of `DESIGN.md`), printing a claim-by-claim report.
//!
//! Run with `cargo run --example paper_figures`.

use transafety::checker::{behaviours, Analysis};
use transafety::interleaving::{Event, Interleaving};
use transafety::lang::{extract_traceset, ExtractOptions};
use transafety::litmus::{by_name, parse_pair};
use transafety::traces::{Action, Domain, Loc, ThreadId, Trace, Value};
use transafety::transform::{
    de_permute_prefix, find_unelimination, is_elim_reordering_of, is_elimination_of,
    render_reorder_matrix, EliminationOptions, ReorderingFn,
};

fn v(n: u32) -> Value {
    Value::new(n)
}

fn check(name: &str, claim: &str, holds: bool) {
    println!("  [{}] {claim}", if holds { "ok" } else { "FAILED" });
    assert!(holds, "{name}: {claim}");
}

fn behaviours_of(name: &str, opts: &Analysis) -> transafety::interleaving::Behaviours {
    let p = by_name(name).unwrap().parse().program;
    let b = behaviours(&p, opts);
    assert!(b.complete, "{name} exploration truncated");
    b.value
}

fn main() {
    let opts = Analysis::new();

    println!("E1 — §1 introduction example");
    let b = behaviours_of("intro-original", &opts);
    check(
        "E1",
        "the original cannot print 1 under SC",
        !b.contains(&vec![v(1)]),
    );
    let bt = behaviours_of("intro-constant-propagated", &opts);
    check(
        "E1",
        "the constant-propagated program can print 1",
        bt.contains(&vec![v(1)]),
    );
    let racy = !transafety::checker::is_data_race_free(
        &by_name("intro-original").unwrap().parse().program,
        &opts,
    );
    check(
        "E1",
        "the original has data races (guarantee vacuous)",
        racy,
    );
    let drf = transafety::checker::is_data_race_free(
        &by_name("intro-volatile").unwrap().parse().program,
        &opts,
    );
    check("E1", "volatile flags make it data race free", drf);

    println!("E2 — Fig. 1 elimination example");
    let bo = behaviours_of("fig1-original", &opts);
    let bt = behaviours_of("fig1-transformed", &opts);
    let one_zero = vec![v(1), v(0)];
    check(
        "E2",
        "the original cannot output 1 then 0",
        !bo.contains(&one_zero),
    );
    check(
        "E2",
        "the transformed program can output 1 then 0",
        bt.contains(&one_zero),
    );
    if let Some(schedule) = transafety::checker::execution_with_behaviour(
        &by_name("fig1-transformed").unwrap().parse().program,
        &one_zero,
        &opts,
    ) {
        println!("    witness schedule: {schedule}");
    }
    // the transformed traceset is a semantic elimination of the original
    let d = Domain::zero_to(2);
    let ex = ExtractOptions::default();
    let (fig1o, fig1t) = parse_pair("fig1-original", "fig1-transformed");
    let to = extract_traceset(&fig1o.program, &d, &ex);
    let tt = extract_traceset(&fig1t.program, &d, &ex);
    assert!(!to.truncated && !tt.truncated);
    check(
        "E2",
        "[transformed] is a semantic elimination of [original]",
        is_elimination_of(
            &tt.traceset,
            &to.traceset,
            &d,
            &EliminationOptions::default(),
        )
        .is_ok(),
    );

    println!("E3 — Fig. 2 reordering example");
    let bo = behaviours_of("fig2-original", &opts);
    let bt = behaviours_of("fig2-transformed", &opts);
    check(
        "E3",
        "the original cannot print 1",
        !bo.contains(&vec![v(1)]),
    );
    check(
        "E3",
        "the transformed program can print 1",
        bt.contains(&vec![v(1)]),
    );
    let d = Domain::zero_to(1);
    let (fig2o, fig2t) = parse_pair("fig2-original", "fig2-transformed");
    let to = extract_traceset(&fig2o.program, &d, &ex);
    let tt = extract_traceset(&fig2t.program, &d, &ex);
    check(
        "E3",
        "[transformed] is a reordering of an elimination of [original] (§4 worked example)",
        is_elim_reordering_of(
            &tt.traceset,
            &to.traceset,
            &d,
            &EliminationOptions::default(),
        )
        .is_ok(),
    );

    println!("E4 — Fig. 3 irrelevant read introduction");
    let ba = behaviours_of("fig3-a", &opts);
    let bc = behaviours_of("fig3-c", &opts);
    let two_zeros = vec![v(0), v(0)];
    check("E4", "(a) cannot print two zeros", !ba.contains(&two_zeros));
    check(
        "E4",
        "(c) can print two zeros — the DRF guarantee is broken",
        bc.contains(&two_zeros),
    );
    check(
        "E4",
        "(a) is data race free",
        transafety::checker::is_data_race_free(&by_name("fig3-a").unwrap().parse().program, &opts),
    );
    // (b) → (c) is a *valid* elimination; the culprit is (a) → (b).
    let d = Domain::zero_to(1);
    let (fig3b, fig3c) = parse_pair("fig3-b", "fig3-c");
    let tb = extract_traceset(&fig3b.program, &d, &ex);
    let tc = extract_traceset(&fig3c.program, &d, &ex);
    check(
        "E4",
        "(b) → (c) is a valid semantic elimination",
        is_elimination_of(
            &tc.traceset,
            &tb.traceset,
            &d,
            &EliminationOptions::default(),
        )
        .is_ok(),
    );
    let (_, fig3b_shared_with_a) = parse_pair("fig3-a", "fig3-b");
    let ta = extract_traceset(&by_name("fig3-a").unwrap().parse().program, &d, &ex);
    let tb_a = extract_traceset(&fig3b_shared_with_a.program, &d, &ex);
    check(
        "E4",
        "(a) → (b) (read introduction) is NOT an elimination of (a)",
        is_elimination_of(
            &tb_a.traceset,
            &ta.traceset,
            &d,
            &EliminationOptions::default(),
        )
        .is_err(),
    );

    println!("E5 — Fig. 4 de-permutation walkthrough");
    let (x, y) = (Loc::normal(0), Loc::normal(1));
    let t_prime = Trace::from_actions([
        Action::start(ThreadId::new(0)),
        Action::write(x, v(1)),
        Action::read(y, v(1)),
        Action::external(v(1)),
    ]);
    let f = ReorderingFn::new(vec![0, 2, 1, 3]).unwrap();
    check(
        "E5",
        "f = {0↦0, 1↦2, 2↦1, 3↦3} is a reordering function",
        f.is_reordering_function_for(&t_prime),
    );
    for n in 0..=4 {
        let p = de_permute_prefix(&t_prime, &f, n);
        println!("    n = {n}: {p}");
    }
    check(
        "E5",
        "the full de-permutation restores the original order",
        de_permute_prefix(&t_prime, &f, 4)
            == Trace::from_actions([
                Action::start(ThreadId::new(0)),
                Action::read(y, v(1)),
                Action::write(x, v(1)),
                Action::external(v(1)),
            ]),
    );

    println!("E6 — Fig. 5 unelimination construction (Lemma 1)");
    let d = Domain::zero_to(1);
    let original = extract_traceset(&by_name("fig5-volatile").unwrap().parse().program, &d, &ex);
    let vol = by_name("fig5-volatile")
        .unwrap()
        .parse()
        .symbols
        .loc("v")
        .unwrap();
    let yloc = by_name("fig5-volatile")
        .unwrap()
        .parse()
        .symbols
        .loc("y")
        .unwrap();
    let i_prime = Interleaving::from_events([
        Event::new(ThreadId::new(0), Action::start(ThreadId::new(0))),
        Event::new(ThreadId::new(1), Action::start(ThreadId::new(1))),
        Event::new(ThreadId::new(0), Action::write(yloc, v(1))),
        Event::new(ThreadId::new(1), Action::read(vol, v(0))),
        Event::new(ThreadId::new(1), Action::external(v(0))),
    ]);
    let w = find_unelimination(
        &i_prime,
        &original.traceset,
        &d,
        &EliminationOptions::default(),
    )
    .expect("Lemma 1 construction");
    println!("    I' = {i_prime}");
    println!("    I  = {}", w.wild);
    println!("    f  = {}", w.matching);
    check(
        "E6",
        "the unelimination satisfies conditions (i)–(iv)",
        w.check(&i_prime),
    );
    check(
        "E6",
        "f moves the write of y to the last position (as in Fig. 5)",
        w.matching.get(2) == Some(w.wild.len() - 1),
    );
    check(
        "E6",
        "the instance of I is an execution with the same behaviour",
        w.wild.instance().is_sequentially_consistent()
            && w.wild.instance().behaviour() == i_prime.behaviour(),
    );

    println!("E7 — the §4 reorderability table");
    print!("{}", render_reorder_matrix());
    println!("\nall figure-level claims of the paper reproduce. ✔");
}
