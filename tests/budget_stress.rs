//! Robustness of the budgeted analysis engine: hammer `Analysis` with
//! hundreds of generated programs under starvation-level budgets and
//! demand that it never panics, always terminates, always labels its
//! output (`Complete` or `Truncated { reason }`), and never launders a
//! truncated search into a DRF proof.

use std::time::Duration;

use transafety::checker::{Analysis, Verdict};
use transafety::litmus::{random_program, GeneratorConfig};
use transafety::{Budget, CancelToken, Completeness};

const SEEDS: u64 = 200;

/// Base analysis configuration; set `TRANSAFETY_NO_POR=1` to run the
/// whole corpus through the unreduced engine (the CI stress job runs
/// both and diffs the outcomes).
fn analysis() -> Analysis {
    let no_por = std::env::var_os("TRANSAFETY_NO_POR").is_some_and(|v| !v.is_empty());
    Analysis::new().por(!no_por)
}

fn configs() -> Vec<GeneratorConfig> {
    vec![
        GeneratorConfig::default(),
        GeneratorConfig::drf(),
        GeneratorConfig::with_volatiles(),
        GeneratorConfig {
            threads: 3,
            stmts_per_thread: 5,
            ..GeneratorConfig::default()
        },
    ]
}

/// One starvation budget: ~5 ms of wall clock and 64 interned states.
fn tiny_budget() -> Budget {
    Budget::unlimited()
        .timeout(Duration::from_millis(5))
        .max_states(64)
}

fn check_report(report: &transafety::AnalysisReport, what: &str) {
    match report.completeness {
        Completeness::Complete => {
            // A complete, no-witness run is exactly a proof; with a
            // witness the verdict must say so.
            match &report.race {
                None => assert_eq!(report.verdict, Verdict::DrfProven, "{what}"),
                Some(_) => assert_eq!(report.verdict, Verdict::Racy, "{what}"),
            }
        }
        Completeness::Truncated { .. } => {
            assert_ne!(
                report.verdict,
                Verdict::DrfProven,
                "{what}: truncated run claimed a DRF proof"
            );
            match &report.race {
                Some(_) => assert_eq!(report.verdict, Verdict::Racy, "{what}"),
                None => assert_eq!(report.verdict, Verdict::Unknown, "{what}"),
            }
        }
    }
}

#[test]
fn starved_analyses_stay_sound_sequential_and_parallel() {
    for config in configs() {
        for seed in 0..SEEDS / configs().len() as u64 {
            let program = random_program(seed, &config);
            for jobs in [1, 4] {
                let report = analysis().jobs(jobs).budget(tiny_budget()).run(&program);
                check_report(&report, &format!("seed {seed} jobs {jobs}"));
            }
        }
    }
}

#[test]
fn state_cap_alone_stays_sound() {
    let config = GeneratorConfig::default();
    for seed in 0..SEEDS {
        let program = random_program(seed, &config);
        let report = analysis().max_states(64).run(&program);
        check_report(&report, &format!("seed {seed} (state cap)"));
        // The cap is enforced, not advisory: the governor stops within
        // one round of cooperative checks of the cap.
        if let Completeness::Truncated { .. } = report.completeness {
            assert!(
                report.states_explored <= 64 + 256,
                "seed {seed}: runaway exploration past the state cap \
                 ({} states)",
                report.states_explored
            );
        }
    }
}

#[test]
fn zero_deadline_trips_immediately_and_reports_why() {
    let program = random_program(7, &GeneratorConfig::default());
    let report = analysis().timeout(Duration::ZERO).jobs(4).run(&program);
    assert!(!report.completeness.is_complete());
    assert_eq!(report.verdict, Verdict::Unknown);
}

#[test]
fn cancellation_mid_run_yields_truncated_report() {
    // Cancel from another thread while the analysis grinds on a
    // many-thread program; the run must come back truncated (or, on a
    // fast machine, complete) — never wedge, never panic.
    let program = random_program(
        3,
        &GeneratorConfig {
            threads: 4,
            stmts_per_thread: 6,
            ..GeneratorConfig::default()
        },
    );
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            token.cancel();
        })
    };
    let report = analysis().jobs(4).run_with_cancel(&program, token);
    canceller.join().expect("canceller thread");
    check_report(&report, "mid-run cancellation");
}
