//! A random program generator — the workload generator for the
//! theorem-scale experiments (E8–E10 in `DESIGN.md`) and the property
//! tests.
//!
//! Generated programs are well formed by construction: locks are
//! generated as balanced `lock m; …; unlock m` blocks, loops are
//! excluded by default (so behaviours are finite and the checkers are
//! exact), and the configuration controls how racy the programs are
//! (fully lock-disciplined programs are data race free by the §3
//! argument).

use crate::rng::Rng;
use transafety_lang::{Cond, Operand, Program, Reg, Stmt};
use transafety_traces::{Loc, Monitor, Value};

/// Configuration for [`random_program`].
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of threads.
    pub threads: usize,
    /// Top-level statements per thread.
    pub stmts_per_thread: usize,
    /// Number of distinct shared locations.
    pub locs: u32,
    /// Number of distinct *volatile* locations (0 disables them).
    pub volatile_locs: u32,
    /// Probability that a generated access targets a volatile location
    /// (when `volatile_locs > 0`).
    pub volatile_prob: f64,
    /// Number of distinct registers per thread.
    pub regs: u32,
    /// Number of distinct monitors.
    pub monitors: u32,
    /// Values used by constants, in `0..values`.
    pub values: u32,
    /// Probability that a generated access is guarded by a lock block.
    pub lock_block_prob: f64,
    /// Probability of generating a conditional.
    pub if_prob: f64,
    /// Probability of generating a bounded loop (0 disables them, the
    /// default). Generated loops are terminating by construction: the
    /// guard is a reserved register (index `regs`, beyond the range any
    /// other statement can touch) that is cleared before the loop and
    /// set by the last statement of the body, so the body runs exactly
    /// once per entry — but the CFG carries a genuine back-edge, which
    /// is what the POR cycle proviso and the loop-bearing agreement
    /// tests need.
    pub loop_prob: f64,
    /// Probability of generating a spin-await loop (0 disables them,
    /// the default). Generated awaits have exactly the shape the
    /// await recognizer in `transafety_lang` accepts — a prelude load
    /// into the reserved guard register followed by
    /// `while (guard != c) { skip; guard := load loc }` — so the
    /// await-aware stutter reduction collapses their re-reads and the
    /// state space stays finite even though the loop has no bound.
    pub await_prob: f64,
    /// When `true`, every shared access is wrapped in a lock block on a
    /// single global monitor, making the program data race free.
    pub lock_discipline: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            threads: 2,
            stmts_per_thread: 4,
            locs: 2,
            volatile_locs: 0,
            volatile_prob: 0.25,
            regs: 3,
            monitors: 1,
            values: 3,
            lock_block_prob: 0.3,
            if_prob: 0.2,
            loop_prob: 0.0,
            await_prob: 0.0,
            lock_discipline: false,
        }
    }
}

impl GeneratorConfig {
    /// A configuration whose programs are data race free by lock
    /// discipline.
    #[must_use]
    pub fn drf() -> Self {
        GeneratorConfig {
            lock_discipline: true,
            ..GeneratorConfig::default()
        }
    }

    /// A configuration that mixes volatile (atomic) locations into the
    /// generated accesses — programs synchronising through volatiles are
    /// often DRF without locks.
    #[must_use]
    pub fn with_volatiles() -> Self {
        GeneratorConfig {
            volatile_locs: 1,
            ..GeneratorConfig::default()
        }
    }

    /// A configuration that mixes bounded loops into the generated
    /// programs (see [`GeneratorConfig::loop_prob`]). Statement count
    /// is kept small because each loop multiplies the interleaving
    /// space.
    #[must_use]
    pub fn with_loops() -> Self {
        GeneratorConfig {
            loop_prob: 0.4,
            stmts_per_thread: 3,
            ..GeneratorConfig::default()
        }
    }

    /// A configuration that mixes spin-await loops into the generated
    /// programs (see [`GeneratorConfig::await_prob`]). Await loops have
    /// no iteration bound, so these programs are only explorable with
    /// the await-aware reduction enabled (the default); statement count
    /// is kept small because each spinning thread multiplies the
    /// interleaving space.
    #[must_use]
    pub fn with_awaits() -> Self {
        GeneratorConfig {
            await_prob: 0.4,
            stmts_per_thread: 3,
            ..GeneratorConfig::default()
        }
    }
}

/// Generates a random program from a seed. The same seed and
/// configuration always produce the same program.
///
/// # Example
///
/// ```
/// use transafety_litmus::{random_program, GeneratorConfig};
/// let p = random_program(42, &GeneratorConfig::default());
/// assert_eq!(p.thread_count(), 2);
/// assert_eq!(p, random_program(42, &GeneratorConfig::default()));
/// ```
#[must_use]
pub fn random_program(seed: u64, config: &GeneratorConfig) -> Program {
    let mut rng = Rng::seed_from_u64(seed);
    let mut threads = Vec::with_capacity(config.threads);
    for _ in 0..config.threads {
        let mut body = Vec::new();
        for _ in 0..config.stmts_per_thread {
            body.push(gen_stmt(&mut rng, config, 1));
        }
        threads.push(body);
    }
    Program::new(threads)
}

fn gen_loc(rng: &mut Rng, config: &GeneratorConfig) -> Loc {
    if config.volatile_locs > 0 && rng.gen_bool(config.volatile_prob) {
        Loc::volatile(rng.gen_range_u32(0, config.volatile_locs))
    } else {
        Loc::normal(rng.gen_range_u32(0, config.locs.max(1)))
    }
}

fn gen_reg(rng: &mut Rng, config: &GeneratorConfig) -> Reg {
    Reg::new(rng.gen_range_u32(0, config.regs.max(1)))
}

fn gen_value(rng: &mut Rng, config: &GeneratorConfig) -> Value {
    Value::new(rng.gen_range_u32(0, config.values.max(1)))
}

fn gen_access(rng: &mut Rng, config: &GeneratorConfig) -> Stmt {
    match rng.gen_range_u32(0, 4) {
        0 => Stmt::Store {
            loc: gen_loc(rng, config),
            src: gen_reg(rng, config),
        },
        1 => Stmt::Load {
            dst: gen_reg(rng, config),
            loc: gen_loc(rng, config),
        },
        2 => Stmt::Move {
            dst: gen_reg(rng, config),
            src: Operand::Const(gen_value(rng, config)),
        },
        _ => Stmt::Print(gen_reg(rng, config)),
    }
}

fn wrap_locked(rng: &mut Rng, config: &GeneratorConfig, inner: Vec<Stmt>) -> Stmt {
    let m = if config.lock_discipline {
        Monitor::new(0)
    } else {
        Monitor::new(rng.gen_range_u32(0, config.monitors.max(1)))
    };
    let mut body = vec![Stmt::Lock(m)];
    body.extend(inner);
    body.push(Stmt::Unlock(m));
    Stmt::Block(body)
}

/// A terminating loop: the reserved guard register is cleared, then the
/// body — ending with a guard set — runs under `while (guard == 0)`.
/// No other generated statement can name the guard (its index is one
/// past `config.regs`), so the body executes exactly once per entry.
fn gen_loop(rng: &mut Rng, config: &GeneratorConfig) -> Stmt {
    let guard = Reg::new(config.regs.max(1));
    let mut body = vec![gen_access(rng, config)];
    if rng.gen_bool(0.4) {
        body.push(gen_access(rng, config));
    }
    body.push(Stmt::Move {
        dst: guard,
        src: Operand::Const(Value::new(1)),
    });
    Stmt::Block(vec![
        Stmt::Move {
            dst: guard,
            src: Operand::Const(Value::ZERO),
        },
        Stmt::While {
            cond: Cond::Eq(Operand::Reg(guard), Operand::Const(Value::ZERO)),
            body: Box::new(Stmt::Block(body)),
        },
    ])
}

/// A spin-await loop in exactly the shape the await recognizer
/// accepts: load the watched location into the reserved guard
/// register, then `while (guard != c) { skip; guard := load loc }`.
/// The `Block([Skip, Load])` body mirrors the parser's desugaring of
/// `while (x != c) skip`, so generated and parsed awaits hit the same
/// recognizer path. The loop has no iteration bound — termination of
/// exploration relies on the await-aware stutter collapse keeping the
/// state space finite (a thread whose wait is never satisfied simply
/// parks at the loop head).
fn gen_await(rng: &mut Rng, config: &GeneratorConfig) -> Stmt {
    let watch = gen_loc(rng, config);
    let target = gen_value(rng, config);
    let guard = Reg::new(config.regs.max(1));
    Stmt::Block(vec![
        Stmt::Load {
            dst: guard,
            loc: watch,
        },
        Stmt::While {
            cond: Cond::Ne(Operand::Reg(guard), Operand::Const(target)),
            body: Box::new(Stmt::Block(vec![
                Stmt::Skip,
                Stmt::Load {
                    dst: guard,
                    loc: watch,
                },
            ])),
        },
    ])
}

fn gen_stmt(rng: &mut Rng, config: &GeneratorConfig, depth: usize) -> Stmt {
    // spin-await loops (never nested). The probability gate keeps
    // await-free configurations from consuming a random draw, so their
    // seeds generate the exact same programs as before the knob
    // existed.
    if depth < 2 && config.await_prob > 0.0 && rng.gen_bool(config.await_prob) {
        return gen_await(rng, config);
    }
    // bounded loops (never nested — each one multiplies the state
    // space). The probability gate keeps loop-free configurations from
    // consuming a random draw, so their seeds generate the exact same
    // programs as before the knob existed.
    if depth < 2 && config.loop_prob > 0.0 && rng.gen_bool(config.loop_prob) {
        return gen_loop(rng, config);
    }
    // conditionals (bounded nesting)
    if depth < 3 && rng.gen_bool(config.if_prob) {
        let cond = if rng.gen_bool(0.5) {
            Cond::Eq(
                Operand::Reg(gen_reg(rng, config)),
                Operand::Const(gen_value(rng, config)),
            )
        } else {
            Cond::Ne(
                Operand::Reg(gen_reg(rng, config)),
                Operand::Const(gen_value(rng, config)),
            )
        };
        return Stmt::If {
            cond,
            then_branch: Box::new(gen_stmt(rng, config, depth + 1)),
            else_branch: Box::new(gen_stmt(rng, config, depth + 1)),
        };
    }
    let access = gen_access(rng, config);
    let must_lock =
        config.lock_discipline && matches!(access, Stmt::Store { .. } | Stmt::Load { .. });
    if must_lock || rng.gen_bool(config.lock_block_prob) {
        let mut inner = vec![access];
        if rng.gen_bool(0.3) {
            inner.push(gen_access(rng, config));
            if config.lock_discipline {
                // keep every access inside the block locked too — it is.
            }
        }
        wrap_locked(rng, config, inner)
    } else {
        access
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::{ExploreOptions, ProgramExplorer};

    #[test]
    fn generation_is_deterministic() {
        let c = GeneratorConfig::default();
        assert_eq!(random_program(7, &c), random_program(7, &c));
        assert_ne!(random_program(7, &c), random_program(8, &c));
    }

    #[test]
    fn lock_discipline_produces_drf_programs() {
        let c = GeneratorConfig::drf();
        for seed in 0..30 {
            let p = random_program(seed, &c);
            assert!(
                ProgramExplorer::new(&p).is_data_race_free(&ExploreOptions::default()),
                "seed {seed} produced a racy program:\n{p}"
            );
        }
    }

    #[test]
    fn default_configuration_produces_some_racy_programs() {
        let c = GeneratorConfig::default();
        let racy = (0..30)
            .filter(|&seed| {
                let p = random_program(seed, &c);
                !ProgramExplorer::new(&p).is_data_race_free(&ExploreOptions::default())
            })
            .count();
        assert!(racy > 0, "expected some racy programs in 30 seeds");
    }

    #[test]
    fn generated_programs_are_explorable() {
        let c = GeneratorConfig::default();
        for seed in 0..10 {
            let p = random_program(seed, &c);
            let b = ProgramExplorer::new(&p).behaviours(&ExploreOptions::default());
            assert!(b.complete, "seed {seed} hit exploration bounds");
        }
    }
}

#[cfg(test)]
mod loop_tests {
    use super::*;
    use transafety_lang::{ExploreOptions, ProgramExplorer};

    fn has_loop(s: &Stmt) -> bool {
        match s {
            Stmt::While { .. } => true,
            Stmt::Block(body) => body.iter().any(has_loop),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => has_loop(then_branch) || has_loop(else_branch),
            _ => false,
        }
    }

    #[test]
    fn loop_configuration_generates_loops() {
        let c = GeneratorConfig::with_loops();
        let loopy = (0..20)
            .filter(|&seed| {
                random_program(seed, &c)
                    .threads()
                    .iter()
                    .any(|t| t.iter().any(has_loop))
            })
            .count();
        assert!(loopy > 5, "only {loopy}/20 seeds produced a loop");
    }

    #[test]
    fn generated_loops_terminate() {
        // The guard-register construction bounds every loop to one
        // iteration, so exploration completes without hitting fuel.
        let c = GeneratorConfig::with_loops();
        for seed in 0..10 {
            let p = random_program(seed, &c);
            let b = ProgramExplorer::new(&p).behaviours(&ExploreOptions::default());
            assert!(b.complete, "seed {seed} hit exploration bounds:\n{p}");
        }
    }

    #[test]
    fn loop_knob_does_not_disturb_existing_seeds() {
        // loop_prob = 0 must not consume randomness: the default
        // configuration generates byte-identical programs whether or
        // not the knob exists in the struct.
        let plain = GeneratorConfig::default();
        let zeroed = GeneratorConfig {
            loop_prob: 0.0,
            ..GeneratorConfig::with_loops()
        };
        for seed in 0..10 {
            let a = random_program(seed, &plain);
            let b = random_program(
                seed,
                &GeneratorConfig {
                    stmts_per_thread: plain.stmts_per_thread,
                    ..zeroed.clone()
                },
            );
            assert_eq!(a, b, "seed {seed}");
        }
    }
}

#[cfg(test)]
mod await_tests {
    use super::*;
    use transafety_lang::{program_loops_are_awaits, ExploreOptions, ProgramExplorer};

    fn has_while(s: &Stmt) -> bool {
        match s {
            Stmt::While { .. } => true,
            Stmt::Block(body) => body.iter().any(has_while),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => has_while(then_branch) || has_while(else_branch),
            _ => false,
        }
    }

    #[test]
    fn await_configuration_generates_recognised_awaits() {
        // Every loop `with_awaits` emits must pass the lang-side await
        // recognizer — otherwise the stutter collapse never fires and
        // the unbounded spin makes exploration diverge.
        let c = GeneratorConfig::with_awaits();
        let mut spinny = 0;
        for seed in 0..20 {
            let p = random_program(seed, &c);
            if p.threads().iter().any(|t| t.iter().any(has_while)) {
                spinny += 1;
                assert!(
                    program_loops_are_awaits(&p),
                    "seed {seed} generated a loop the recognizer rejects:\n{p}"
                );
            }
        }
        assert!(spinny > 5, "only {spinny}/20 seeds produced an await");
    }

    #[test]
    fn await_programs_are_explorable_with_collapse() {
        // Awaits have no iteration bound, so completeness here is the
        // stutter collapse working end to end: failed re-reads fold
        // into one parked state and the state space is finite.
        let c = GeneratorConfig::with_awaits();
        for seed in 0..10 {
            let p = random_program(seed, &c);
            let b = ProgramExplorer::new(&p).behaviours(&ExploreOptions::default());
            assert!(b.complete, "seed {seed} hit exploration bounds:\n{p}");
        }
    }

    #[test]
    fn await_knob_does_not_disturb_existing_seeds() {
        // await_prob = 0 must not consume randomness: the default
        // configuration generates byte-identical programs whether or
        // not the knob exists in the struct.
        let plain = GeneratorConfig::default();
        let zeroed = GeneratorConfig {
            await_prob: 0.0,
            stmts_per_thread: plain.stmts_per_thread,
            ..GeneratorConfig::with_awaits()
        };
        for seed in 0..10 {
            assert_eq!(
                random_program(seed, &plain),
                random_program(seed, &zeroed),
                "seed {seed}"
            );
        }
    }
}

#[cfg(test)]
mod volatile_tests {
    use super::*;
    use transafety_lang::{ExploreOptions, ProgramExplorer};

    #[test]
    fn volatile_configuration_generates_volatile_accesses() {
        let c = GeneratorConfig::with_volatiles();
        let any_volatile = (0..20).any(|seed| {
            random_program(seed, &c)
                .shared_locs()
                .iter()
                .any(|l| l.is_volatile())
        });
        assert!(any_volatile);
    }

    #[test]
    fn volatile_programs_remain_explorable() {
        let c = GeneratorConfig::with_volatiles();
        for seed in 0..10 {
            let p = random_program(seed, &c);
            let b = ProgramExplorer::new(&p).behaviours(&ExploreOptions::default());
            assert!(b.complete, "seed {seed}");
        }
    }
}
