//! Trace semantics for shared-memory concurrent programs.
//!
//! This crate implements the language-independent trace semantics of
//! Ševčík, *Safe Optimisations for Shared-Memory Concurrent Programs*
//! (PLDI 2011), §3: memory actions, traces of single threads, wildcard
//! traces, and prefix-closed *tracesets* representing whole programs.
//!
//! The higher layers of the reproduction build on these types:
//! interleavings and data-race freedom live in `transafety-interleaving`,
//! the semantic elimination/reordering transformations in
//! `transafety-transform`, and the concrete §6 language in
//! `transafety-lang`.
//!
//! # Example
//!
//! Build the traceset of thread 1 of the reordering example (Fig. 2 of the
//! paper): `r1:=y; x:=1; print r1` over the value domain `{0, 1}`.
//!
//! ```
//! use transafety_traces::{Action, Domain, Loc, ThreadId, Trace, Traceset, Value};
//!
//! let x = Loc::normal(0);
//! let y = Loc::normal(1);
//! let mut set = Traceset::new();
//! for v in Domain::zero_to(1).iter() {
//!     set.insert(Trace::from_actions([
//!         Action::start(ThreadId::new(1)),
//!         Action::read(y, v),
//!         Action::write(x, Value::new(1)),
//!         Action::external(v),
//!     ]))?;
//! }
//! // Tracesets are prefix closed: every prefix is a member.
//! assert!(set.contains_actions(&[Action::start(ThreadId::new(1))]));
//! assert_eq!(set.maximal_traces().count(), 2);
//! # Ok::<(), transafety_traces::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod domain;
mod error;
mod ids;
mod matching;
mod model;
mod trace;
mod traceset;
mod value;
mod wildcard;

pub use action::Action;
pub use domain::Domain;
pub use error::TraceError;
pub use ids::{Loc, Monitor, ThreadId};
pub use matching::Matching;
pub use model::{MemoryModelKind, UnknownModel};
pub use trace::Trace;
pub use traceset::{Cursor, MaximalTraces, Traceset, TracesetTraces};
pub use value::Value;
pub use wildcard::{WildAction, WildTrace};
