//! Property-based tests over the core data structures and the safety
//! theorems on randomly generated programs.
//!
//! The generators are driven by the repository's own deterministic
//! [`Rng`](transafety::litmus::Rng) (one seed per case, so failures
//! reproduce exactly); the offline build environment has no external
//! property-testing dependency. Case counts are scaled by the shared
//! `TRANSAFETY_FUZZ_SEEDS` knob (see `tests/support`).

mod support;

use support::seeds_or;
use transafety::checker::{drf_guarantee, Analysis, DrfVerdict};
use transafety::fuzz::{check_pair, OracleConfig, Pass, PassSet, Pipeline};
use transafety::interleaving::Explorer;
use transafety::lang::{extract_traceset, ExtractOptions};
use transafety::litmus::{random_program, GeneratorConfig, Rng};
use transafety::syntactic::all_rewrites;
use transafety::traces::{
    Action, Domain, Loc, Matching, Monitor, ThreadId, Trace, Traceset, Value, WildAction, WildTrace,
};
use transafety::transform::{de_permute, eliminable_kinds, reorderable, ReorderingFn};
use transafety::{Budget, MemoryModelKind};

// ---------- generators ----------------------------------------------------

fn arb_value(r: &mut Rng) -> Value {
    Value::new(r.gen_range_u32(0, 4))
}

fn arb_loc(r: &mut Rng) -> Loc {
    if r.gen_bool(0.6) {
        Loc::normal(r.gen_range_u32(0, 3))
    } else {
        Loc::volatile(r.gen_range_u32(0, 2))
    }
}

fn arb_action(r: &mut Rng) -> Action {
    match r.gen_range_u32(0, 5) {
        0 => {
            let (l, v) = (arb_loc(r), arb_value(r));
            Action::read(l, v)
        }
        1 => {
            let (l, v) = (arb_loc(r), arb_value(r));
            Action::write(l, v)
        }
        2 => Action::lock(Monitor::new(r.gen_range_u32(0, 2))),
        3 => Action::unlock(Monitor::new(r.gen_range_u32(0, 2))),
        _ => Action::external(arb_value(r)),
    }
}

/// A well-formed trace: starts with `S(0)`, balanced locks by
/// construction (unbalancing unlocks are flipped into locks).
fn arb_trace(r: &mut Rng) -> Trace {
    let n = r.gen_range_usize(0, 6);
    let mut t = Trace::from_actions([Action::start(ThreadId::new(0))]);
    let mut depth: std::collections::BTreeMap<Monitor, i64> = Default::default();
    for _ in 0..n {
        let a = arb_action(r);
        match a {
            Action::Unlock(m) if depth.get(&m).copied().unwrap_or(0) == 0 => {
                *depth.entry(m).or_insert(0) += 1;
                t.push(Action::lock(m));
            }
            Action::Lock(m) => {
                *depth.entry(m).or_insert(0) += 1;
                t.push(a);
            }
            Action::Unlock(m) => {
                *depth.entry(m).or_insert(0) -= 1;
                t.push(a);
            }
            _ => t.push(a),
        }
    }
    t
}

fn arb_traces(r: &mut Rng, lo: usize, hi: usize) -> Vec<Trace> {
    let n = r.gen_range_usize(lo, hi);
    (0..n).map(|_| arb_trace(r)).collect()
}

// ---------- traceset invariants ------------------------------------------

#[test]
fn traceset_is_prefix_closed() {
    for case in 0..seeds_or(64) {
        let mut r = Rng::seed_from_u64(case);
        let traces = arb_traces(&mut r, 1, 5);
        let ts = Traceset::from_traces(traces.clone()).unwrap();
        for t in &traces {
            for n in 0..=t.len() {
                assert!(ts.contains(&t.prefix(n)), "case {case}");
            }
        }
        // the member count equals the number of distinct prefixes
        let mut all: Vec<Trace> = traces
            .iter()
            .flat_map(|t| (0..=t.len()).map(|n| t.prefix(n)).collect::<Vec<_>>())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), ts.member_count(), "case {case}");
    }
}

#[test]
fn traceset_iteration_roundtrips() {
    for case in 0..seeds_or(64) {
        let mut r = Rng::seed_from_u64(case);
        let traces = arb_traces(&mut r, 1, 4);
        let ts = Traceset::from_traces(traces).unwrap();
        let rebuilt = Traceset::from_traces(ts.maximal_traces()).unwrap();
        assert_eq!(rebuilt, ts, "case {case}");
    }
}

#[test]
fn wildcard_instances_are_instances() {
    for case in 0..seeds_or(64) {
        let mut r = Rng::seed_from_u64(case);
        let t = arb_trace(&mut r);
        // blank out every non-volatile read
        let wt: WildTrace = t
            .iter()
            .map(|a| match a {
                Action::Read { loc, .. } if !loc.is_volatile() => WildAction::wildcard_read(*loc),
                other => WildAction::from(*other),
            })
            .collect();
        let d = Domain::zero_to(2);
        for inst in wt.instances(&d).take(64) {
            assert!(wt.is_instance(&inst), "case {case}");
            assert_eq!(inst.len(), wt.len(), "case {case}");
        }
    }
}

#[test]
fn belongs_to_iff_all_instances_members() {
    for case in 0..seeds_or(48) {
        let mut r = Rng::seed_from_u64(case);
        let t = arb_trace(&mut r);
        let d = Domain::zero_to(1);
        let wt: WildTrace = t
            .iter()
            .map(|a| match a {
                Action::Read { loc, .. } if !loc.is_volatile() => WildAction::wildcard_read(*loc),
                other => WildAction::from(*other),
            })
            .collect();
        // traceset built from all instances => belongs-to holds
        let all: Vec<Trace> = wt.instances(&d).collect();
        let ts = Traceset::from_traces(all.clone()).unwrap();
        assert!(ts.belongs_to(&wt, &d), "case {case}");
        // removing one maximal instance breaks it (if there was a wildcard)
        if all.len() > 1 {
            let ts2 = Traceset::from_traces(all[1..].to_vec()).unwrap();
            assert!(!ts2.belongs_to(&wt, &d), "case {case}");
        }
    }
}

// ---------- matching / reordering function laws ---------------------------

#[test]
fn matching_compose_inverse_is_identity() {
    for case in 0..seeds_or(64) {
        let mut r = Rng::seed_from_u64(case);
        let n = r.gen_range_usize(0, 6);
        // a random injective partial map on 0..8
        let mut seen = std::collections::BTreeSet::new();
        let mut m = Matching::new();
        for _ in 0..n {
            let (k, v) = (r.gen_range_usize(0, 8), r.gen_range_usize(0, 8));
            if m.get(k).is_none() && seen.insert(v) {
                m.insert(k, v).unwrap();
            }
        }
        let id = m.compose(&m.inverse());
        for (a, b) in id.iter() {
            assert_eq!(a, b, "case {case}");
        }
        assert_eq!(id.len(), m.len(), "case {case}");
    }
}

#[test]
fn identity_always_de_permutes() {
    for case in 0..seeds_or(64) {
        let mut r = Rng::seed_from_u64(case);
        let t = arb_trace(&mut r);
        let f = ReorderingFn::identity(t.len());
        assert!(f.is_reordering_function_for(&t), "case {case}");
        assert_eq!(de_permute(&t, &f), t, "case {case}");
    }
}

#[test]
fn reorderability_classes_are_respected() {
    for case in 0..seeds_or(128) {
        let mut r = Rng::seed_from_u64(case);
        let (a, b) = (arb_action(&mut r), arb_action(&mut r));
        // acquire actions never reorder with anything later
        if a.is_acquire() {
            assert!(!reorderable(&a, &b), "case {case}: {a} ; {b}");
        }
        // nothing sinks below a later release except … nothing
        if b.is_release() {
            assert!(!reorderable(&a, &b) || b.is_normal_access(), "case {case}");
        }
        // conflicting accesses never reorder
        if a.conflicts_with(&b) {
            assert!(!reorderable(&a, &b), "case {case}");
        }
    }
}

#[test]
fn eliminable_kinds_only_for_eliminable() {
    for case in 0..seeds_or(96) {
        let mut r = Rng::seed_from_u64(case);
        let t = arb_trace(&mut r);
        let i = r.gen_range_usize(0, 8);
        let wt = WildTrace::from_trace(&t);
        let kinds = eliminable_kinds(&wt, i);
        // start actions and acquires are never eliminable
        if let Some(a) = t.get(i) {
            if a.is_start() || a.is_acquire() {
                assert!(
                    kinds.is_empty(),
                    "case {case}: {a} at {i} in {t}: {kinds:?}"
                );
            }
        } else {
            assert!(kinds.is_empty(), "case {case}");
        }
    }
}

// ---------- end-to-end safety on random programs --------------------------

#[test]
fn safe_rewrites_respect_drf_guarantee() {
    let opts = Analysis::new();
    for seed in 0..seeds_or(12).min(24) {
        let p = random_program(seed, &GeneratorConfig::drf());
        for rw in all_rewrites(&p).into_iter().take(6) {
            let verdict = drf_guarantee(&rw.result, &p, &opts);
            assert!(
                matches!(verdict, DrfVerdict::Holds | DrfVerdict::Inconclusive),
                "seed {seed}: {rw} gave {verdict}\n{p}"
            );
        }
    }
}

/// The fuzzing subsystem's refinement oracle, asserted directly on each
/// sampled transformation: a DRF original admits no divergence from any
/// safe rewrite under any model (Theorems 1–4 + the DRF guarantee — DRF
/// implies TSO- and PSO-behaviours coincide with SC).
#[test]
fn sampled_rewrites_satisfy_the_refinement_oracle() {
    for seed in 0..seeds_or(12).min(24) {
        let p = random_program(seed, &GeneratorConfig::drf());
        let samples = all_rewrites(&p).len().min(6);
        for model in MemoryModelKind::ALL {
            let config = OracleConfig {
                model,
                budget: Budget::unlimited().max_states(50_000),
                jobs: 1,
                por: true,
            };
            for pick in 0..samples {
                let pipe = Pipeline {
                    passes: vec![Pass {
                        set: PassSet::Any,
                        pick: u32::try_from(pick).unwrap(),
                    }],
                };
                let report = check_pair(&p, &pipe, &config);
                assert!(
                    !report.outcome.is_divergence(),
                    "seed {seed} model={model} pick={pick}: safe rewrite diverged on a DRF \
                     original: {:?}\n{p}",
                    report.outcome
                );
            }
        }
    }
}

#[test]
fn extraction_never_produces_ill_formed_traces() {
    let ex = ExtractOptions {
        max_actions: 8,
        max_tau: 512,
        ..ExtractOptions::default()
    };
    for seed in 0..seeds_or(12).min(24) {
        let p = random_program(seed, &GeneratorConfig::default());
        let d = Domain::zero_to(1);
        let e = extract_traceset(&p, &d, &ex);
        for t in e.traceset.maximal_traces() {
            assert!(t.validate().is_ok(), "seed {seed}: {t}");
        }
    }
}

#[test]
fn race_witnesses_from_random_programs_are_valid() {
    let ex = ExtractOptions {
        max_actions: 8,
        max_tau: 512,
        ..ExtractOptions::default()
    };
    for seed in 0..seeds_or(12).min(24) {
        let p = random_program(seed, &GeneratorConfig::default());
        let d = Domain::zero_to(1);
        let e = extract_traceset(&p, &d, &ex);
        if e.truncated {
            continue;
        }
        if let Some(w) = Explorer::new(&e.traceset).race_witness() {
            assert!(w.execution.is_sequentially_consistent(), "seed {seed}");
            assert!(w.execution.is_interleaving_of(&e.traceset), "seed {seed}");
        }
    }
}

// ---------- origin preservation (Lemma 2/3 instances) ---------------------

/// Lemma 2, executably: a safe rewrite cannot create an origin for a
/// value the original traceset has no origin for.
#[test]
fn rewrites_preserve_origin_freedom() {
    let magic = Value::new(41);
    let ex = ExtractOptions {
        max_actions: 8,
        max_tau: 512,
        ..ExtractOptions::default()
    };
    let d = Domain::from_values([Value::new(2), magic]);
    for seed in 0..seeds_or(10).min(24) {
        let p = random_program(seed, &GeneratorConfig::default());
        if p.mentions_constant(magic) {
            continue;
        }
        let e = extract_traceset(&p, &d, &ex);
        if e.truncated {
            continue;
        }
        assert!(
            !e.traceset.has_origin_for(magic),
            "Lemma 6 on the original, seed {seed}"
        );
        for rw in all_rewrites(&p).into_iter().take(5) {
            let et = extract_traceset(&rw.result, &d, &ex);
            if et.truncated {
                continue;
            }
            assert!(
                !et.traceset.has_origin_for(magic),
                "seed {seed}: rewrite created an origin\n{}",
                rw.result
            );
        }
    }
}

/// Lemma 3, executably: origin-freedom really does keep the value out
/// of every behaviour.
#[test]
fn origin_freedom_excludes_value_from_behaviours() {
    let magic = Value::new(41);
    for seed in 0..seeds_or(10).min(24) {
        let p = random_program(seed, &GeneratorConfig::default());
        if p.mentions_constant(magic) {
            continue;
        }
        let b = transafety::lang::ProgramExplorer::new(&p)
            .behaviours(&transafety::lang::ExploreOptions::default());
        if !b.complete {
            continue;
        }
        for beh in &b.value {
            assert!(!beh.contains(&magic), "seed {seed}: 41 appeared in {beh:?}");
        }
    }
}

// ---------- parse/print round trip ----------------------------------------

/// The pretty-printer and parser agree: printing a generated program
/// and reparsing it yields a structurally identical program
/// (locations, monitors and registers keep their indices by the
/// `l<i>`/`v<i>`/`m<i>`/`r<i>` naming convention).
#[test]
fn parse_print_roundtrip() {
    for case in 0..seeds_or(24) {
        let volatiles = (case % 2) as u32;
        let config = GeneratorConfig {
            volatile_locs: volatiles,
            ..GeneratorConfig::default()
        };
        let p = random_program(case * 31 + 7, &config);
        let printed = p.to_string();
        let reparsed = transafety::lang::parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed program failed to parse: {e}\n{printed}"));
        assert_eq!(
            reparsed.program, p,
            "case {case}: round trip changed the program:\n{p}\n→\n{}",
            reparsed.program
        );
    }
}
