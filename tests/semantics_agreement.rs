//! Integration tests: internal consistency of the semantics engines.
//!
//! * the two §3 data-race definitions (adjacent conflicts vs.
//!   happens-before-unordered conflicts) agree on every corpus program;
//! * the traceset route (`[P]` + interleaving explorer) and the direct
//!   program explorer compute the same behaviours and the same DRF
//!   verdicts;
//! * Lemma 1 (unelimination) holds along real transformed executions.

use transafety::interleaving::{Behaviours, ExploreLimits, Explorer};
use transafety::lang::{
    extract_traceset, ExploreOptions, ExtractOptions, Program, ProgramExplorer,
};
use transafety::litmus::{corpus, parse_pair};
use transafety::traces::Domain;
use transafety::transform::{find_unelimination, EliminationOptions};

fn small(p: &Program) -> bool {
    p.threads().iter().flatten().count() <= 9 && p.thread_count() <= 3
}

fn has_loop(p: &Program) -> bool {
    fn stmt_has_loop(s: &transafety::lang::Stmt) -> bool {
        match s {
            transafety::lang::Stmt::While { .. } => true,
            transafety::lang::Stmt::Block(b) => b.iter().any(stmt_has_loop),
            transafety::lang::Stmt::If {
                then_branch,
                else_branch,
                ..
            } => stmt_has_loop(then_branch) || stmt_has_loop(else_branch),
            _ => false,
        }
    }
    p.threads().iter().flatten().any(stmt_has_loop)
}

/// The value domain that makes traceset extraction complete for a
/// program: all constants it can ever store.
fn domain_for(p: &Program) -> Domain {
    Domain::from_values(p.constants())
}

#[test]
fn traceset_and_direct_explorers_agree_on_behaviours() {
    let ex = ExtractOptions::default();
    let opts = ExploreOptions::default();
    let mut compared = 0;
    for l in corpus() {
        let p = l.parse().program;
        if !small(&p) || has_loop(&p) {
            continue;
        }
        let d = domain_for(&p);
        let extraction = extract_traceset(&p, &d, &ex);
        assert!(!extraction.truncated, "{}", l.name);
        let via_tracesets: Behaviours = Explorer::new(&extraction.traceset).behaviours();
        let direct = ProgramExplorer::new(&p).behaviours(&opts);
        assert!(direct.complete, "{}", l.name);
        assert_eq!(
            via_tracesets, direct.value,
            "behaviours disagree on {}",
            l.name
        );
        compared += 1;
    }
    assert!(compared >= 8, "compared only {compared} corpus programs");
}

#[test]
fn drf_definitions_agree() {
    let ex = ExtractOptions::default();
    let opts = ExploreOptions::default();
    for l in corpus() {
        let p = l.parse().program;
        if !small(&p) || has_loop(&p) {
            continue;
        }
        let d = domain_for(&p);
        let extraction = extract_traceset(&p, &d, &ex);
        let explorer = Explorer::new(&extraction.traceset);
        // definition 1: adjacent conflicting actions in some execution
        let adjacent_race = !explorer.is_data_race_free();
        // definition 2: hb-unordered conflicting accesses in some
        // maximal execution
        let hb_race = explorer
            .maximal_executions(ExploreLimits::default())
            .iter()
            .any(|i| !i.hb_unordered_conflicts().is_empty());
        assert_eq!(
            adjacent_race, hb_race,
            "the two §3 race definitions disagree on {}",
            l.name
        );
        // and the direct explorer agrees with both
        let direct_race = !ProgramExplorer::new(&p).is_data_race_free(&opts);
        assert_eq!(adjacent_race, direct_race, "{}", l.name);
    }
}

#[test]
fn race_witnesses_are_real_executions() {
    let ex = ExtractOptions::default();
    for l in corpus() {
        let p = l.parse().program;
        if !small(&p) || has_loop(&p) {
            continue;
        }
        let d = domain_for(&p);
        let extraction = extract_traceset(&p, &d, &ex);
        if let Some(w) = Explorer::new(&extraction.traceset).race_witness() {
            assert!(
                w.execution.is_interleaving_of(&extraction.traceset),
                "{}",
                l.name
            );
            assert!(w.execution.is_sequentially_consistent(), "{}", l.name);
            let (a, b) = w.pair();
            assert!(a.action().conflicts_with(&b.action()), "{}", l.name);
            assert_ne!(a.thread(), b.thread(), "{}", l.name);
        }
    }
}

#[test]
fn lemma1_unelimination_on_fig1_executions() {
    // Every execution of the Fig. 1 transformed program uneliminates
    // into the original traceset; when the execution's strict prefixes
    // are race free the instance is again an execution (the paper's
    // Lemma 1 consequence — Fig. 1 is racy, so we only require the
    // construction and its conditions, not instance SC-ness).
    let (o, t) = parse_pair("fig1-original", "fig1-transformed");
    let d = Domain::zero_to(2);
    let ex = ExtractOptions::default();
    let to = extract_traceset(&o.program, &d, &ex);
    let tt = extract_traceset(&t.program, &d, &ex);
    assert!(!to.truncated && !tt.truncated);
    let execs = Explorer::new(&tt.traceset).maximal_executions(ExploreLimits {
        max_interleavings: 40,
    });
    let opts = EliminationOptions::default();
    let mut constructed = 0;
    for e in execs.iter().take(20) {
        let w = find_unelimination(e, &to.traceset, &d, &opts)
            .unwrap_or_else(|| panic!("no unelimination for {e}"));
        assert!(w.check(e), "conditions failed for {e}");
        assert!(w.wild.belongs_to(&to.traceset, &d));
        constructed += 1;
    }
    assert!(constructed >= 10);
}

#[test]
fn lemma1_instances_are_executions_for_drf_originals() {
    // For a DRF original (Fig. 5), Lemma 1's consequence holds in full:
    // the instance of the unelimination is an execution of the original
    // with the same behaviour.
    let (o, t) = parse_pair("fig5-volatile", "fig5-transformed");
    let d = Domain::zero_to(1);
    let ex = ExtractOptions::default();
    let to = extract_traceset(&o.program, &d, &ex);
    let tt = extract_traceset(&t.program, &d, &ex);
    assert!(Explorer::new(&to.traceset).is_data_race_free());
    let opts = EliminationOptions::default();
    for e in Explorer::new(&tt.traceset).maximal_executions(ExploreLimits::default()) {
        let w = find_unelimination(&e, &to.traceset, &d, &opts)
            .unwrap_or_else(|| panic!("no unelimination for {e}"));
        assert!(w.check(&e));
        let instance = w.wild.instance();
        assert!(instance.is_sequentially_consistent(), "{e} -> {instance}");
        assert!(instance.is_interleaving_of(&to.traceset));
        assert_eq!(instance.behaviour(), e.behaviour());
    }
}
