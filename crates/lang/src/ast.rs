//! Abstract syntax of the §6 language (Fig. 6 of the paper).

use std::collections::BTreeSet;
use std::fmt;

use transafety_traces::{Loc, Monitor, Value};

/// A thread-local register name (`r`, `r1`, `r2`, … in the paper; by the
/// paper's convention, identifiers beginning with `r` are registers).
///
/// # Example
///
/// ```
/// use transafety_lang::Reg;
/// assert_eq!(Reg::new(1).to_string(), "r1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u32);

impl Reg {
    /// Creates a register with the given index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Reg(index)
    }

    /// The numeric index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The `ri` production of Fig. 6: a register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// A natural-number constant.
    Const(Value),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<Value> for Operand {
    fn from(v: Value) -> Self {
        Operand::Const(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Const(v) => write!(f, "{v}"),
        }
    }
}

/// The `T` production of Fig. 6: an (in)equality test on operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cond {
    /// `ri == ri`.
    Eq(Operand, Operand),
    /// `ri != ri`.
    Ne(Operand, Operand),
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Eq(a, b) => write!(f, "{a} == {b}"),
            Cond::Ne(a, b) => write!(f, "{a} != {b}"),
        }
    }
}

/// The `S` production of Fig. 6: statements of the simple concurrent
/// language.
///
/// The paper's syntax is kept verbatim; in particular the only
/// shared-memory side effects are whole-location reads and writes, and
/// there is no arithmetic (which is what makes the out-of-thin-air
/// Theorem 5 stateable).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// `l := r;` — store register `src` to location `loc`.
    Store {
        /// The destination shared location.
        loc: Loc,
        /// The source register.
        src: Reg,
    },
    /// `r := l;` — load location `loc` into register `dst`.
    Load {
        /// The destination register.
        dst: Reg,
        /// The source shared location.
        loc: Loc,
    },
    /// `r := ri;` — a register move or constant load (no memory action).
    Move {
        /// The destination register.
        dst: Reg,
        /// The source operand.
        src: Operand,
    },
    /// `lock m;`
    Lock(Monitor),
    /// `unlock m;`
    Unlock(Monitor),
    /// `skip;`
    Skip,
    /// `print r;` — an external action with the register's value.
    Print(Reg),
    /// `{ L }` — a block of statements.
    Block(Vec<Stmt>),
    /// `if (T) S else S`.
    If {
        /// The test.
        cond: Cond,
        /// The statement taken when the test holds.
        then_branch: Box<Stmt>,
        /// The statement taken otherwise.
        else_branch: Box<Stmt>,
    },
    /// `while (T) S`.
    While {
        /// The loop test.
        cond: Cond,
        /// The loop body.
        body: Box<Stmt>,
    },
}

impl Stmt {
    /// The free shared-memory locations `fv(S)` of §6.1 — the locations
    /// the statement may access.
    #[must_use]
    pub fn shared_locs(&self) -> BTreeSet<Loc> {
        let mut out = BTreeSet::new();
        self.collect_locs(&mut out);
        out
    }

    fn collect_locs(&self, out: &mut BTreeSet<Loc>) {
        match self {
            Stmt::Store { loc, .. } | Stmt::Load { loc, .. } => {
                out.insert(*loc);
            }
            Stmt::Block(stmts) => {
                for s in stmts {
                    s.collect_locs(out);
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.collect_locs(out);
                else_branch.collect_locs(out);
            }
            Stmt::While { body, .. } => body.collect_locs(out),
            _ => {}
        }
    }

    /// The registers mentioned by the statement (read or written).
    #[must_use]
    pub fn regs(&self) -> BTreeSet<Reg> {
        let mut out = BTreeSet::new();
        self.collect_regs(&mut out);
        out
    }

    fn collect_regs(&self, out: &mut BTreeSet<Reg>) {
        fn operand(o: &Operand, out: &mut BTreeSet<Reg>) {
            if let Operand::Reg(r) = o {
                out.insert(*r);
            }
        }
        fn cond(c: &Cond, out: &mut BTreeSet<Reg>) {
            match c {
                Cond::Eq(a, b) | Cond::Ne(a, b) => {
                    operand(a, out);
                    operand(b, out);
                }
            }
        }
        match self {
            Stmt::Store { src, .. } => {
                out.insert(*src);
            }
            Stmt::Load { dst, .. } => {
                out.insert(*dst);
            }
            Stmt::Move { dst, src } => {
                out.insert(*dst);
                operand(src, out);
            }
            Stmt::Print(r) => {
                out.insert(*r);
            }
            Stmt::Block(stmts) => {
                for s in stmts {
                    s.collect_regs(out);
                }
            }
            Stmt::If {
                cond: c,
                then_branch,
                else_branch,
            } => {
                cond(c, out);
                then_branch.collect_regs(out);
                else_branch.collect_regs(out);
            }
            Stmt::While { cond: c, body } => {
                cond(c, out);
                body.collect_regs(out);
            }
            _ => {}
        }
    }

    /// Is the statement *sync-free* (§6.1): no lock/unlock statements and
    /// no accesses to volatile locations?
    #[must_use]
    pub fn is_sync_free(&self) -> bool {
        match self {
            Stmt::Lock(_) | Stmt::Unlock(_) => false,
            Stmt::Store { loc, .. } | Stmt::Load { loc, .. } => !loc.is_volatile(),
            Stmt::Move { .. } | Stmt::Skip | Stmt::Print(_) => true,
            Stmt::Block(stmts) => stmts.iter().all(Stmt::is_sync_free),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => then_branch.is_sync_free() && else_branch.is_sync_free(),
            Stmt::While { body, .. } => body.is_sync_free(),
        }
    }

    /// Does the statement (recursively) contain the constant `c` in a
    /// `r := c` move? Theorem 5 (out of thin air) applies to programs with
    /// no such statement for the value of interest.
    #[must_use]
    pub fn mentions_constant(&self, c: Value) -> bool {
        match self {
            Stmt::Move {
                src: Operand::Const(v),
                ..
            } => *v == c,
            Stmt::Block(stmts) => stmts.iter().any(|s| s.mentions_constant(c)),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => then_branch.mentions_constant(c) || else_branch.mentions_constant(c),
            Stmt::While { body, .. } => body.mentions_constant(c),
            _ => false,
        }
    }

    /// All constants appearing in the statement (in moves and in
    /// conditions — the latter cannot flow into memory but are collected
    /// for conservative analyses).
    #[must_use]
    pub fn constants(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        self.collect_constants(&mut out);
        out
    }

    fn collect_constants(&self, out: &mut BTreeSet<Value>) {
        fn operand(o: &Operand, out: &mut BTreeSet<Value>) {
            if let Operand::Const(v) = o {
                out.insert(*v);
            }
        }
        match self {
            Stmt::Move { src, .. } => operand(src, out),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                match cond {
                    Cond::Eq(a, b) | Cond::Ne(a, b) => {
                        operand(a, out);
                        operand(b, out);
                    }
                }
                then_branch.collect_constants(out);
                else_branch.collect_constants(out);
            }
            Stmt::While { cond, body } => {
                match cond {
                    Cond::Eq(a, b) | Cond::Ne(a, b) => {
                        operand(a, out);
                        operand(b, out);
                    }
                }
                body.collect_constants(out);
            }
            Stmt::Block(stmts) => {
                for s in stmts {
                    s.collect_constants(out);
                }
            }
            _ => {}
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Stmt::Store { loc, src } => writeln!(f, "{pad}{loc} := {src};"),
            Stmt::Load { dst, loc } => writeln!(f, "{pad}{dst} := {loc};"),
            Stmt::Move { dst, src } => writeln!(f, "{pad}{dst} := {src};"),
            Stmt::Lock(m) => writeln!(f, "{pad}lock {m};"),
            Stmt::Unlock(m) => writeln!(f, "{pad}unlock {m};"),
            Stmt::Skip => writeln!(f, "{pad}skip;"),
            Stmt::Print(r) => writeln!(f, "{pad}print {r};"),
            Stmt::Block(stmts) => {
                writeln!(f, "{pad}{{")?;
                for s in stmts {
                    s.fmt_indented(f, indent + 1)?;
                }
                writeln!(f, "{pad}}}")
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                writeln!(f, "{pad}if ({cond})")?;
                then_branch.fmt_indented(f, indent + 1)?;
                writeln!(f, "{pad}else")?;
                else_branch.fmt_indented(f, indent + 1)
            }
            Stmt::While { cond, body } => {
                writeln!(f, "{pad}while ({cond})")?;
                body.fmt_indented(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// A whole program `P ::= L || … || L` (Fig. 6): one statement list per
/// statically-created thread.
///
/// # Example
///
/// ```
/// use transafety_lang::{Program, Reg, Stmt};
/// use transafety_traces::{Loc, Value};
/// let x = Loc::normal(0);
/// let p = Program::new(vec![
///     vec![
///         Stmt::Move { dst: Reg::new(0), src: Value::new(1).into() },
///         Stmt::Store { loc: x, src: Reg::new(0) },
///     ],
///     vec![Stmt::Load { dst: Reg::new(1), loc: x }, Stmt::Print(Reg::new(1))],
/// ]);
/// assert_eq!(p.thread_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Program {
    threads: Vec<Vec<Stmt>>,
}

impl Program {
    /// Creates a program from one statement list per thread.
    #[must_use]
    pub fn new(threads: Vec<Vec<Stmt>>) -> Self {
        Program { threads }
    }

    /// The number of threads.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The statement list of thread `i`.
    #[must_use]
    pub fn thread(&self, i: usize) -> Option<&[Stmt]> {
        self.threads.get(i).map(Vec::as_slice)
    }

    /// All thread bodies.
    #[must_use]
    pub fn threads(&self) -> &[Vec<Stmt>] {
        &self.threads
    }

    /// Mutable access to the thread bodies (used by the syntactic
    /// transformation engine).
    pub fn threads_mut(&mut self) -> &mut Vec<Vec<Stmt>> {
        &mut self.threads
    }

    /// Every shared location the program mentions.
    #[must_use]
    pub fn shared_locs(&self) -> BTreeSet<Loc> {
        let mut out = BTreeSet::new();
        for t in &self.threads {
            for s in t {
                s.collect_locs(&mut out);
            }
        }
        out
    }

    /// Every constant appearing in the program text.
    #[must_use]
    pub fn constants(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        for t in &self.threads {
            for s in t {
                s.collect_constants(&mut out);
            }
        }
        out
    }

    /// Does the program contain a statement `r := c` for the given
    /// constant (the hypothesis of Theorem 5)?
    #[must_use]
    pub fn mentions_constant(&self, c: Value) -> bool {
        self.threads
            .iter()
            .flatten()
            .any(|s| s.mentions_constant(c))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // declare volatile locations so the printed program reparses
        // with the same volatility
        let volatiles: Vec<String> = self
            .shared_locs()
            .into_iter()
            .filter(|l| l.is_volatile())
            .map(|l| l.to_string())
            .collect();
        if !volatiles.is_empty() {
            writeln!(f, "volatile {};", volatiles.join(", "))?;
        }
        for (i, t) in self.threads.iter().enumerate() {
            if i > 0 {
                writeln!(f, "||")?;
            }
            writeln!(f, "// thread {i}")?;
            for s in t {
                s.fmt_indented(f, 0)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Loc {
        Loc::normal(0)
    }
    fn vol() -> Loc {
        Loc::volatile(1)
    }

    #[test]
    fn shared_locs_descend_into_control() {
        let s = Stmt::If {
            cond: Cond::Eq(Reg::new(0).into(), Value::new(1).into()),
            then_branch: Box::new(Stmt::Store {
                loc: x(),
                src: Reg::new(0),
            }),
            else_branch: Box::new(Stmt::Block(vec![Stmt::Load {
                dst: Reg::new(1),
                loc: vol(),
            }])),
        };
        let locs = s.shared_locs();
        assert!(locs.contains(&x()) && locs.contains(&vol()));
    }

    #[test]
    fn sync_freedom() {
        assert!(Stmt::Skip.is_sync_free());
        assert!(Stmt::Store {
            loc: x(),
            src: Reg::new(0)
        }
        .is_sync_free());
        assert!(!Stmt::Load {
            dst: Reg::new(0),
            loc: vol()
        }
        .is_sync_free());
        assert!(!Stmt::Lock(Monitor::new(0)).is_sync_free());
        assert!(!Stmt::Block(vec![Stmt::Skip, Stmt::Unlock(Monitor::new(0))]).is_sync_free());
        assert!(Stmt::While {
            cond: Cond::Ne(Reg::new(0).into(), Value::ZERO.into()),
            body: Box::new(Stmt::Skip),
        }
        .is_sync_free());
    }

    #[test]
    fn constant_mention() {
        let p = Program::new(vec![vec![
            Stmt::Move {
                dst: Reg::new(0),
                src: Value::new(42).into(),
            },
            Stmt::Store {
                loc: x(),
                src: Reg::new(0),
            },
        ]]);
        assert!(p.mentions_constant(Value::new(42)));
        assert!(!p.mentions_constant(Value::new(7)));
        assert!(p.constants().contains(&Value::new(42)));
    }

    #[test]
    fn regs_collection() {
        let s = Stmt::Block(vec![
            Stmt::Move {
                dst: Reg::new(0),
                src: Reg::new(1).into(),
            },
            Stmt::Print(Reg::new(2)),
        ]);
        let regs = s.regs();
        assert_eq!(regs.len(), 3);
    }

    #[test]
    fn display_round_trippable_shape() {
        let p = Program::new(vec![
            vec![Stmt::Store {
                loc: x(),
                src: Reg::new(0),
            }],
            vec![Stmt::Print(Reg::new(0))],
        ]);
        let s = p.to_string();
        assert!(s.contains("l0 := r0;"));
        assert!(s.contains("||"));
        assert!(s.contains("print r0;"));
    }
}
