//! Theorem-level decision procedures for the paper's claims on concrete
//! programs:
//!
//! * [`drf_guarantee`] — Theorems 1–4: a transformation of a data-race
//!   free program may not add behaviours and must preserve data race
//!   freedom;
//! * [`check_rewrite`] — Lemmas 4/5: each syntactic rewrite lands in its
//!   promised semantic class (elimination, reordering∘elimination, or
//!   traceset identity);
//! * [`no_thin_air`] — Theorem 5: no composition of safe rewrites can
//!   make a program read, write or output an unmentioned constant;
//! * [`sc_only_accepts`] — the SC-preserving baseline compiler the paper
//!   argues against (§1, §7);
//! * [`classify_transformation`] — one-shot classification of a
//!   transformation into the strongest safe class that holds.
//!
//! # Example
//!
//! ```
//! use transafety_checker::{drf_guarantee, Analysis, DrfVerdict};
//! use transafety_lang::parse_program;
//!
//! let original = parse_program(
//!     "lock m; r1 := x; r2 := x; print r2; unlock m; || lock m; x := 1; unlock m;")?.program;
//! let transformed = parse_program(
//!     "lock m; r1 := x; r2 := r1; print r2; unlock m; || lock m; x := 1; unlock m;")?.program;
//! assert_eq!(
//!     drf_guarantee(&transformed, &original, &Analysis::new()),
//!     DrfVerdict::Holds,
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod correspondence;
mod delay_set;
mod guarantee;
mod oota;
mod options;

pub use classify::{
    classify_transformation, classify_transformation_under, ModelClassification,
    TransformationClass,
};
pub use correspondence::{
    check_elimination_correspondence, check_identity_correspondence,
    check_reordering_correspondence, check_rewrite, classify, Correspondence, SemanticClass,
};
pub use delay_set::{access_sites, delay_set, delay_stats, AccessSite, DelaySet, DelayStats};
pub use guarantee::{
    behaviour_refinement, behaviours, drf_guarantee, execution_with_behaviour, is_data_race_free,
    race_witness, sc_only_accepts, DrfVerdict, Refinement,
};
pub use oota::{no_thin_air, traceset_has_origin, OotaVerdict};
#[allow(deprecated)]
pub use options::CheckOptions;
pub use options::{Analysis, AnalysisReport, Verdict};
pub use transafety_interleaving::{
    Budget, BudgetBound, CancelToken, Completeness, ExploreStats, TraceEvent, TruncationReason,
};
pub use transafety_lang::{MemoryModel, ModelExplorer, ModelRaceWitness, ScheduleStep};
pub use transafety_traces::MemoryModelKind;
pub use transafety_transform::EliminationKind;
// The per-model witness diagnostics (§8), so a `--model tso`/`pso` race
// report can be explained without depending on the tso crate directly.
pub use transafety_tso::{
    explain_pso, explain_tso, pso_fragment, tso_fragment, PsoExplanation, PsoModel, TsoExplanation,
    TsoModel,
};
