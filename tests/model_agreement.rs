//! Equivalence of the `ScModel` trait backend and the historical SC
//! pipeline: selecting `--model sc` explicitly must be bit-identical to
//! the default analysis — verdict, race witness, behaviour set, state
//! census and governor accounting — on the whole litmus corpus and on
//! hundreds of generated programs, sequentially and in parallel. The
//! `MemoryModel` redesign is an API seam, never a semantics change.

mod support;

use support::{capped_budget, configs, seeds, JOBS};
use transafety::checker::Analysis;
use transafety::lang::{ExploreOptions, ModelExplorer, Program, ProgramExplorer, ScModel};
use transafety::litmus::{corpus, random_program};
use transafety::traces::MemoryModelKind;
use transafety::{AnalysisReport, Budget};

/// Everything in the report except the wall-clock time must coincide.
/// The governor's raw state tally is only compared on the sequential
/// driver: with parallel workers two *identical* runs already disagree
/// on it (racing workers tally states in timing-dependent counts), so
/// it is no part of the determinism contract at `jobs > 1`.
fn assert_identical(default: &AnalysisReport, explicit: &AnalysisReport, jobs: usize, what: &str) {
    assert_eq!(default.verdict, explicit.verdict, "{what}: verdict");
    assert_eq!(default.race, explicit.race, "{what}: race witness");
    assert_eq!(
        default.race_schedule, explicit.race_schedule,
        "{what}: race schedule"
    );
    assert_eq!(
        default.behaviours, explicit.behaviours,
        "{what}: behaviours"
    );
    assert_eq!(
        default.reachable_states, explicit.reachable_states,
        "{what}: census"
    );
    if jobs == 1 {
        assert_eq!(
            default.states_explored, explicit.states_explored,
            "{what}: governor accounting"
        );
    }
    assert_eq!(
        default.completeness, explicit.completeness,
        "{what}: completeness"
    );
    assert_eq!(default.model, MemoryModelKind::Sc, "{what}: default model");
    assert_eq!(
        explicit.model,
        MemoryModelKind::Sc,
        "{what}: explicit model"
    );
}

fn run_pair(program: &Program, jobs: usize, budget: &Budget, what: &str) {
    let default = Analysis::new().jobs(jobs).budget(*budget).run(program);
    let explicit = Analysis::new()
        .jobs(jobs)
        .budget(*budget)
        .model(MemoryModelKind::Sc)
        .run(program);
    assert_identical(&default, &explicit, jobs, what);
}

#[test]
fn sc_backend_is_bit_identical_on_the_litmus_corpus() {
    let budget = Budget::unlimited();
    for litmus in corpus() {
        let program = litmus.parse().program;
        for jobs in JOBS {
            run_pair(
                &program,
                jobs,
                &budget,
                &format!("litmus {} jobs={jobs}", litmus.name),
            );
        }
    }
}

#[test]
fn sc_backend_is_bit_identical_on_generated_programs() {
    let configs = configs();
    let budget = capped_budget();
    for seed in 0..seeds() {
        let config = &configs[usize::try_from(seed).unwrap() % configs.len()];
        let program = random_program(seed, config);
        for jobs in JOBS {
            run_pair(&program, jobs, &budget, &format!("seed {seed} jobs={jobs}"));
        }
    }
}

#[test]
fn trait_engine_matches_the_legacy_entry_points() {
    // The ungoverned `ProgramExplorer` API (which compiled code in the
    // wild still calls) and a hand-built `ModelExplorer` over `ScModel`
    // must agree action for action.
    let opts = ExploreOptions::default();
    for litmus in corpus() {
        let program = litmus.parse().program;
        let ex = ProgramExplorer::new(&program);
        let model = ScModel::new(&ex);
        let mx = ModelExplorer::new(&model);
        assert_eq!(
            ex.behaviours(&opts),
            mx.behaviours(&opts),
            "{}: behaviours",
            litmus.name
        );
        assert_eq!(
            ex.race_witness(&opts),
            mx.race_witness(&opts).map(|w| w.witness),
            "{}: race witness",
            litmus.name
        );
        assert_eq!(
            ex.count_reachable_states(&opts),
            mx.count_reachable_states(&opts),
            "{}: census",
            litmus.name
        );
    }
}
