//! Memory-model identifiers shared across the reproduction.
//!
//! The paper's main development (§3–§7) is carried out under sequential
//! consistency; §8 observes that x86-style TSO is *explained by* SC plus
//! the write→read reordering and forwarding-elimination transformations,
//! and PSO additionally relaxes write→write order. The exploration
//! engines, the transformation-safety tables, and the CLI all key their
//! per-model behaviour on this identifier.

use std::fmt;
use std::str::FromStr;

/// The memory model an exploration or safety judgement is made under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum MemoryModelKind {
    /// Sequential consistency: the interleaving semantics of §5.
    #[default]
    Sc,
    /// Total store order: per-thread FIFO store buffers with
    /// store-to-load forwarding (§8).
    Tso,
    /// Partial store order: per-thread, per-location store buffers,
    /// additionally relaxing write→write order.
    Pso,
}

impl MemoryModelKind {
    /// All models, in increasing order of relaxation.
    pub const ALL: [Self; 3] = [Self::Sc, Self::Tso, Self::Pso];

    /// The canonical lower-case name, as accepted by `drfcheck --model`.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            Self::Sc => "sc",
            Self::Tso => "tso",
            Self::Pso => "pso",
        }
    }

    /// Whether a partial-order reduction is available for this model.
    /// SC reduces every phase with dynamic invisible-singleton ample
    /// sets; the buffered models reduce the behaviour phase with
    /// commuting-flush and invisible-act ample sets (their race search
    /// always runs on the full expansion — the adjacent-conflict
    /// witness argument needs flush-free interposition).
    #[must_use]
    pub const fn por_supported(self) -> bool {
        true
    }
}

impl fmt::Display for MemoryModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The error returned when parsing an unknown model name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownModel(pub String);

impl fmt::Display for UnknownModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown memory model `{}` (expected sc, tso or pso)",
            self.0
        )
    }
}

impl std::error::Error for UnknownModel {}

impl FromStr for MemoryModelKind {
    type Err = UnknownModel;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sc" => Ok(Self::Sc),
            "tso" => Ok(Self::Tso),
            "pso" => Ok(Self::Pso),
            other => Err(UnknownModel(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_names() {
        for m in MemoryModelKind::ALL {
            assert_eq!(m.as_str().parse::<MemoryModelKind>().unwrap(), m);
            assert_eq!(m.to_string(), m.as_str());
        }
        assert_eq!(
            "TSO".parse::<MemoryModelKind>().unwrap(),
            MemoryModelKind::Tso
        );
        assert!("arm".parse::<MemoryModelKind>().is_err());
    }

    #[test]
    fn por_supported_on_every_model() {
        for m in MemoryModelKind::ALL {
            assert!(m.por_supported(), "{m}");
        }
    }
}
