//! Fault isolation end to end: a worker that panics mid-analysis is
//! quarantined by the pool, its siblings are cancelled, and the
//! analysis completes on the sequential reference engine — same
//! numbers, `faults > 0`, process alive.
//!
//! This file holds a single test: the injection hook is a
//! process-global one-shot, so a sibling test running a pool
//! concurrently could consume the armed panic.

use transafety_checker::{Analysis, Verdict};
use transafety_interleaving::par;
use transafety_lang::parse_program;

#[test]
fn injected_worker_panic_degrades_to_sequential_and_completes() {
    let program = parse_program("volatile v; v := 1; || r0 := v; print r0;")
        .expect("corpus-style program parses")
        .program;

    let reference = Analysis::new().jobs(4).run(&program);
    assert!(reference.completeness.is_complete());
    assert_eq!(reference.faults, 0);

    par::arm_worker_panic();
    let report = Analysis::new().jobs(4).run(&program);

    assert!(
        report.faults >= 1,
        "the injected panic must be quarantined and counted"
    );
    assert!(
        report.completeness.is_complete(),
        "recovery reruns the phase sequentially to completion"
    );
    assert_eq!(report.behaviours, reference.behaviours);
    assert_eq!(report.race, reference.race);
    assert_eq!(report.reachable_states, reference.reachable_states);
    assert_eq!(report.verdict, Verdict::DrfProven);
}
