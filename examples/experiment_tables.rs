//! Regenerates the quantitative tables of `EXPERIMENTS.md`: state-space
//! sizes, execution counts and behaviour counts per corpus program, the
//! traceset-size-vs-domain sweep, and the transformation-closure growth
//! curve.
//!
//! Run with `cargo run --example experiment_tables`.

use transafety::interleaving::Explorer;
use transafety::lang::{
    extract_traceset, parse_program, ExploreOptions, ExtractOptions, ProgramExplorer,
};
use transafety::litmus::{by_name, corpus};
use transafety::syntactic::{transform_closure, RuleSet};
use transafety::traces::Domain;

fn main() {
    let opts = ExploreOptions::default();

    println!("Table A — corpus programs under the direct SC explorer");
    println!(
        "{:<24} {:>6} {:>8} {:>12} {:>11} {:>5}",
        "program", "stmts", "states", "executions", "behaviours", "DRF"
    );
    for l in corpus() {
        let p = l.parse().program;
        let stmts = p.threads().iter().flatten().count();
        if stmts > 14 {
            continue;
        }
        let ex = ProgramExplorer::new(&p);
        let states = ex.count_reachable_states(&opts);
        let b = ex.behaviours(&opts);
        let drf = ex.is_data_race_free(&opts);
        // execution counts via the traceset explorer (exact for loop-free)
        let d = Domain::from_values(p.constants());
        let extraction = extract_traceset(&p, &d, &ExtractOptions::default());
        let execs = if extraction.truncated {
            "≥bound".to_string()
        } else {
            Explorer::new(&extraction.traceset)
                .count_maximal_executions()
                .to_string()
        };
        println!(
            "{:<24} {:>6} {:>8} {:>12} {:>11} {:>5}",
            l.name,
            stmts,
            states,
            execs,
            format!("{}{}", b.value.len(), if b.complete { "" } else { "+" }),
            if drf { "yes" } else { "no" }
        );
    }

    println!("\nTable B — traceset size vs. read-value domain (|domain|^reads growth)");
    let p = parse_program("r1 := x; r2 := y; r3 := x; print r3;")
        .unwrap()
        .program;
    println!("{:>8} {:>14}", "|domain|", "member traces");
    for max in [0u32, 1, 2, 4, 8] {
        let d = Domain::zero_to(max);
        let e = extract_traceset(&p, &d, &ExtractOptions::default());
        println!("{:>8} {:>14}", max + 1, e.traceset.member_count());
    }

    println!("\nTable C — transformation-closure growth (Fig. 3(a), all safe rules)");
    let p = by_name("fig3-a").unwrap().parse().program;
    println!("{:>6} {:>10}", "depth", "programs");
    for depth in 0..=4 {
        let c = transform_closure(&p, RuleSet::All, depth);
        println!("{:>6} {:>10}", depth, c.len());
    }

    println!("\nTable D — SC vs TSO vs PSO state spaces (store buffers cost states)");
    println!("{:<12} {:>9} {:>9} {:>9}", "litmus", "SC", "TSO", "PSO?");
    for name in ["sb", "mp", "lb", "corr"] {
        let p = by_name(name).unwrap().parse().program;
        let sc = ProgramExplorer::new(&p).count_reachable_states(&opts);
        let tso_model = transafety::tso::TsoModel::new(&p);
        let tso = transafety::lang::ModelExplorer::new(&tso_model).count_reachable_states(&opts);
        println!("{:<12} {:>9} {:>9} {:>9}", name, sc, tso, "-");
    }
}
