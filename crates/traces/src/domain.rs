//! Finite value domains for bounded exploration.

use crate::Value;

/// A finite, deduplicated, sorted set of values.
///
/// The paper's READ rule (`v ∈ t(x)`, Fig. 7) lets a thread-local read
/// observe *any* value of the location's type, which makes tracesets
/// infinite for unbounded types. This reproduction works with finite
/// domains: traceset extraction, wildcard-trace instantiation and the
/// `belongs-to` check are all parameterised by a [`Domain`].
///
/// All paper examples only mention values `{0, 1, 2}`, so small domains
/// suffice to reproduce every figure; `DESIGN.md` §5 discusses why this
/// bounding is a behaviour-preserving substitution.
///
/// # Example
///
/// ```
/// use transafety_traces::{Domain, Value};
/// let d = Domain::zero_to(2);
/// assert_eq!(d.len(), 3);
/// assert!(d.contains(Value::new(2)));
/// assert!(!d.contains(Value::new(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Domain {
    values: Vec<Value>,
}

impl Domain {
    /// Creates the domain `{0, 1, ..., max}`.
    #[must_use]
    pub fn zero_to(max: u32) -> Self {
        Domain {
            values: (0..=max).map(Value::new).collect(),
        }
    }

    /// Creates a domain from arbitrary values; duplicates are removed and
    /// the zero (default) value is always included, since every location is
    /// zero-initialised.
    #[must_use]
    pub fn from_values<I: IntoIterator<Item = Value>>(values: I) -> Self {
        let mut v: Vec<Value> = values.into_iter().collect();
        v.push(Value::ZERO);
        v.sort_unstable();
        v.dedup();
        Domain { values: v }
    }

    /// The values of the domain in increasing order.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of values in the domain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the domain is empty (it never is for domains built
    /// by the provided constructors, which always include zero).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, v: Value) -> bool {
        self.values.binary_search(&v).is_ok()
    }

    /// Iterates over the values in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        self.values.iter().copied()
    }
}

impl Default for Domain {
    /// The default domain is `{0, 1, 2}`, enough for every example in the
    /// paper.
    fn default() -> Self {
        Domain::zero_to(2)
    }
}

impl FromIterator<Value> for Domain {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Domain::from_values(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_to_builds_inclusive_range() {
        let d = Domain::zero_to(3);
        assert_eq!(
            d.values(),
            &[Value::new(0), Value::new(1), Value::new(2), Value::new(3)]
        );
    }

    #[test]
    fn from_values_dedups_sorts_and_adds_zero() {
        let d = Domain::from_values([Value::new(5), Value::new(1), Value::new(5)]);
        assert_eq!(d.values(), &[Value::new(0), Value::new(1), Value::new(5)]);
    }

    #[test]
    fn default_domain_covers_paper_examples() {
        let d = Domain::default();
        assert!(d.contains(Value::ZERO));
        assert!(d.contains(Value::new(1)));
        assert!(d.contains(Value::new(2)));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn collect_into_domain() {
        let d: Domain = [Value::new(2), Value::new(4)].into_iter().collect();
        assert!(d.contains(Value::ZERO) && d.contains(Value::new(4)));
    }
}
