//! Matchings: partial injective index maps between traces or interleavings.

use std::collections::BTreeMap;
use std::fmt;

/// A *matching* between two sequences (§3 of the paper): a partial
/// injective function `f` from indices of one sequence to indices of
/// another such that matched elements are equal (the equality itself is
/// checked by the users of this type, e.g. the elimination and reordering
/// searches, because for wildcard traces "equal" means "instantiates").
///
/// A matching is *complete* if its domain covers all indices of the source
/// sequence of length `n` (see [`Matching::is_complete`]).
///
/// # Example
///
/// ```
/// use transafety_traces::Matching;
/// let mut m = Matching::new();
/// m.insert(0, 0).unwrap();
/// m.insert(1, 2).unwrap();
/// assert_eq!(m.get(1), Some(2));
/// assert!(m.is_complete(2));
/// assert!(!m.is_complete(3));
/// // injectivity is enforced:
/// assert!(m.insert(2, 2).is_err());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Matching {
    forward: BTreeMap<usize, usize>,
    backward: BTreeMap<usize, usize>,
}

/// Error returned by [`Matching::insert`] when injectivity or
/// functionality would be violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchingConflict {
    /// The source index of the rejected pair.
    pub from: usize,
    /// The target index of the rejected pair.
    pub to: usize,
}

impl fmt::Display for MatchingConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pair {} -> {} conflicts with an existing mapping",
            self.from, self.to
        )
    }
}

impl std::error::Error for MatchingConflict {}

impl Matching {
    /// Creates an empty matching.
    #[must_use]
    pub fn new() -> Self {
        Matching::default()
    }

    /// Creates a matching from `(from, to)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`MatchingConflict`] if the pairs do not describe a partial
    /// injective function.
    pub fn from_pairs<I: IntoIterator<Item = (usize, usize)>>(
        pairs: I,
    ) -> Result<Self, MatchingConflict> {
        let mut m = Matching::new();
        for (a, b) in pairs {
            m.insert(a, b)?;
        }
        Ok(m)
    }

    /// The identity matching on `{0, ..., n-1}`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matching::new();
        for i in 0..n {
            m.insert(i, i).expect("identity is injective");
        }
        m
    }

    /// Adds the pair `from -> to`.
    ///
    /// # Errors
    ///
    /// Returns [`MatchingConflict`] if `from` is already mapped to a
    /// different index or another index is already mapped to `to`.
    pub fn insert(&mut self, from: usize, to: usize) -> Result<(), MatchingConflict> {
        match (self.forward.get(&from), self.backward.get(&to)) {
            (Some(&t), _) if t != to => Err(MatchingConflict { from, to }),
            (_, Some(&s)) if s != from => Err(MatchingConflict { from, to }),
            _ => {
                self.forward.insert(from, to);
                self.backward.insert(to, from);
                Ok(())
            }
        }
    }

    /// Removes the pair with source `from`, if present.
    pub fn remove(&mut self, from: usize) {
        if let Some(to) = self.forward.remove(&from) {
            self.backward.remove(&to);
        }
    }

    /// Looks up `f(from)`.
    #[must_use]
    pub fn get(&self, from: usize) -> Option<usize> {
        self.forward.get(&from).copied()
    }

    /// Looks up `f⁻¹(to)`.
    #[must_use]
    pub fn get_inverse(&self, to: usize) -> Option<usize> {
        self.backward.get(&to).copied()
    }

    /// The number of matched pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Returns `true` if no pairs are matched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Is the matching complete for a source of length `n`, i.e. is
    /// `dom(f) = {0, ..., n-1}`?
    #[must_use]
    pub fn is_complete(&self, n: usize) -> bool {
        self.forward.len() == n && self.forward.keys().all(|&k| k < n)
    }

    /// Iterates over the `(from, to)` pairs in increasing `from` order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.forward.iter().map(|(&a, &b)| (a, b))
    }

    /// The set of target indices (the range of the matching), sorted.
    #[must_use]
    pub fn range(&self) -> Vec<usize> {
        self.backward.keys().copied().collect()
    }

    /// Is the matching order-preserving (monotone) on its domain?
    #[must_use]
    pub fn is_monotone(&self) -> bool {
        let mut prev: Option<usize> = None;
        for (_, to) in self.iter() {
            if let Some(p) = prev {
                if to <= p {
                    return false;
                }
            }
            prev = Some(to);
        }
        true
    }

    /// Composes two matchings: `(g ∘ f)(i) = g(f(i))`, defined where both
    /// are defined.
    #[must_use]
    pub fn compose(&self, g: &Matching) -> Matching {
        let mut out = Matching::new();
        for (a, b) in self.iter() {
            if let Some(c) = g.get(b) {
                out.insert(a, c)
                    .expect("composition of injections is injective");
            }
        }
        out
    }

    /// The inverse matching.
    #[must_use]
    pub fn inverse(&self) -> Matching {
        Matching {
            forward: self.backward.clone(),
            backward: self.forward.clone(),
        }
    }
}

impl fmt::Display for Matching {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (a, b)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}↦{b}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_enforces_injectivity() {
        let mut m = Matching::new();
        m.insert(0, 5).unwrap();
        assert_eq!(m.insert(1, 5), Err(MatchingConflict { from: 1, to: 5 }));
        assert_eq!(m.insert(0, 6), Err(MatchingConflict { from: 0, to: 6 }));
        // re-inserting the same pair is fine
        m.insert(0, 5).unwrap();
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn identity_and_completeness() {
        let m = Matching::identity(3);
        assert!(m.is_complete(3));
        assert!(!m.is_complete(4));
        assert!(m.is_monotone());
        assert_eq!(m.get(2), Some(2));
    }

    #[test]
    fn inverse_and_compose() {
        let m = Matching::from_pairs([(0, 2), (1, 0)]).unwrap();
        let inv = m.inverse();
        assert_eq!(inv.get(2), Some(0));
        assert_eq!(inv.get(0), Some(1));
        let id = m.compose(&inv);
        assert_eq!(id.get(0), Some(0));
        assert_eq!(id.get(1), Some(1));
    }

    #[test]
    fn monotonicity_detects_swaps() {
        let m = Matching::from_pairs([(0, 1), (1, 0)]).unwrap();
        assert!(!m.is_monotone());
    }

    #[test]
    fn remove_clears_both_directions() {
        let mut m = Matching::from_pairs([(0, 3)]).unwrap();
        m.remove(0);
        assert!(m.is_empty());
        m.insert(7, 3).unwrap();
        assert_eq!(m.get_inverse(3), Some(7));
    }

    #[test]
    fn range_is_sorted() {
        let m = Matching::from_pairs([(0, 9), (1, 2), (2, 5)]).unwrap();
        assert_eq!(m.range(), vec![2, 5, 9]);
    }

    #[test]
    fn display_shows_pairs() {
        let m = Matching::from_pairs([(0, 0), (1, 2)]).unwrap();
        assert_eq!(m.to_string(), "{0↦0, 1↦2}");
    }
}
