//! The §8 experiment: run the litmus corpus on the SC explorer and the
//! TSO store-buffer machine, and check that every relaxed (non-SC)
//! behaviour is explained by the paper's write→read-reordering +
//! forwarding-elimination fragment.
//!
//! Run with `cargo run --example tso_litmus`.

use transafety::lang::ExploreOptions;
use transafety::litmus::corpus;
use transafety::tso::{explain_pso, explain_tso};

fn main() {
    let opts = ExploreOptions::default();
    println!(
        "{:<24} {:>4} {:>4} {:>8} {:>8} {:>10}",
        "litmus", "#SC", "#TSO", "relaxed", "closure", "explained"
    );
    let mut relaxed_count = 0;
    let mut all_explained = true;
    for l in corpus() {
        let p = l.parse().program;
        // skip the larger programs where the closure would be slow
        if p.threads().iter().flatten().count() > 14 {
            continue;
        }
        let e = explain_tso(&p, 3, &opts);
        if !e.complete {
            println!("{:<24} (bounds hit — skipped)", l.name);
            continue;
        }
        if e.relaxed {
            relaxed_count += 1;
        }
        all_explained &= e.explained;
        println!(
            "{:<24} {:>4} {:>4} {:>8} {:>8} {:>10}",
            l.name,
            e.sc.len(),
            e.tso.len(),
            if e.relaxed { "yes" } else { "-" },
            e.closure_size,
            if e.explained { "yes" } else { "NO" }
        );
        assert!(
            e.explained,
            "{}: a TSO behaviour escaped the transformation closure — \
             this would falsify the §8 claim",
            l.name
        );
    }
    println!(
        "\n{relaxed_count} corpus programs exhibit relaxed TSO behaviour; \
         every TSO behaviour is explained by the transformation fragment: {}",
        if all_explained { "✔" } else { "✘" }
    );

    // §8 future work: the same story for PSO (per-location buffers),
    // whose extra weakness (W→W reordering) is covered by adding R-WW.
    println!(
        "\nPSO (§8 future work) — fragment extended with R-WW:\n{:<24} {:>4} {:>8} {:>10}",
        "litmus", "#PSO", "relaxed", "explained"
    );
    for name in ["sb", "mp", "lb", "corr", "overwritten-store"] {
        let p = corpus()
            .into_iter()
            .find(|l| l.name == name)
            .unwrap()
            .parse()
            .program;
        let e = explain_pso(&p, 3, &opts);
        println!(
            "{:<24} {:>4} {:>8} {:>10}",
            name,
            e.pso.len(),
            if e.relaxed { "yes" } else { "-" },
            if e.explained { "yes" } else { "NO" }
        );
        assert!(e.explained, "{name}: unexplained PSO behaviour");
    }
    println!("\nPSO behaviours are explained by the extended fragment. ✔");
}
