//! Differential refinement fuzzing for the paper's transformation
//! rules: shrink-on-failure (program × pipeline) validation across
//! memory models.
//!
//! The crate closes the loop ROADMAP item 4 asks for — the claim that
//! the Fig. 10/11 rewrites are safe stops being a handful of sampled
//! property tests and becomes a continuously fuzzed refinement check:
//!
//! 1. [`pipeline`] composes random, serialisable, shrinkable sequences
//!    of syntactic passes (eliminations, reorderings, combined) and
//!    applies them deterministically;
//! 2. [`oracle`] runs the original and transformed programs through the
//!    budgeted [`Analysis`](transafety_checker::Analysis) engine under
//!    SC, TSO or PSO and checks behaviour-set and verdict refinement,
//!    cross-validating divergences against
//!    `classify_transformation_under` — a kind flagged unsafe under a
//!    model must eventually yield a divergence witness, a safe kind
//!    must never;
//! 3. [`shrink`] delta-debugs a failing pair down to a minimal witness
//!    (statement/thread removal and constant simplification on the
//!    program side, drop/truncate/halve on the pipeline side);
//! 4. [`driver`] soaks 10⁵+ (program, pipeline) pairs per run over the
//!    work-stealing pool, every case inside a per-case
//!    [`Budget`](transafety_interleaving::Budget) and `catch_unwind`
//!    fault boundary, and reports a `fuzz` section in the
//!    `drfcheck-stats-v2` JSON ([`stats`]).
//!
//! [`seeded`] carries hand-written known-unsafe positive controls
//! (overwritten-write elimination and a load→store reordering, both
//! divergent under TSO) that every run must detect and minimise, and
//! [`witness`] persists minimised counterexamples as replayable
//! `.tsl` + `.pipeline` pairs — the format `tests/regressions/` stores.
//!
//! # Example
//!
//! ```
//! use transafety_fuzz::{check_pair, Outcome, OracleConfig, Pipeline};
//! use transafety_lang::parse_program;
//! use transafety_traces::MemoryModelKind;
//!
//! // E-RAR on a single thread refines under every model.
//! let p = parse_program("r1 := x; r2 := x; print r2;")?.program;
//! let pipe: Pipeline = "elim:0".parse()?;
//! let report = check_pair(&p, &pipe, &OracleConfig::for_model(MemoryModelKind::Tso));
//! assert!(matches!(report.outcome, Outcome::Refines));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod oracle;
pub mod pipeline;
pub mod seeded;
pub mod shrink;
pub mod stats;
pub mod witness;

pub use driver::{derive_case, run_soak, soak_generator_configs, SoakConfig, SoakReport};
pub use oracle::{check_pair, CaseReport, Divergence, DivergenceKind, OracleConfig, Outcome};
pub use pipeline::{Application, AppliedPass, Pass, PassSet, Pipeline, PipelineConfig};
pub use seeded::{known_unsafe_cases, replay, resolve, SeededCase, SeededResult};
pub use shrink::{minimise, program_shrinks, statement_count, Minimised};
pub use stats::FuzzStats;
pub use witness::{load_witness, pipeline_for_rules, Witness};
