//! Service-level observability: admission, cache, degradation and
//! latency counters for one serve session.
//!
//! The per-request exploration metrics stay with the PR 5 layer
//! ([`transafety_interleaving::ExploreMetrics`]); this module counts
//! the things only the *service* can see — shed requests, cache
//! behaviour, retries, injected faults, per-request latency — and
//! serialises them under the same stable schema id as the analysis
//! stats (`drfcheck-stats-v2`), as a dedicated `serve` section:
//!
//! ```json
//! {"schema":"drfcheck-stats-v2","section":"serve","serve":{...}}
//! ```
//!
//! Counters are accumulated under one mutex: requests are heavyweight
//! (a full exploration each), so per-request locking is noise — the
//! striped-counter machinery of the exploration layer would be
//! over-engineering here.

use std::time::Duration;

/// Number of fixed histogram buckets: 64 exact buckets for values
/// below 64 µs, then 32 log-spaced sub-buckets per power-of-two octave
/// up to `u64::MAX`.
const LATENCY_BUCKETS: usize = 1920;

/// Sub-bucket resolution: each octave is split into `2^5 = 32`
/// sub-buckets, bounding the relative quantisation error at 1/32.
const SUB_BITS: u32 = 5;

/// A fixed-size log-scale latency histogram.
///
/// Replaces the earlier unbounded `Vec<u64>` of raw samples: a serve
/// session is long-lived, so per-request sample retention grew without
/// bound. The histogram keeps `count`, `total` and `max` exact and
/// answers nearest-rank quantiles to within one sub-bucket (≤ 1/32
/// relative error; exact for samples below 64 µs), in O(1) memory
/// regardless of how many samples are recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Bucket occupancy, HDR-style: index `v` for `v < 64`, then
    /// `shift * 32 + (v >> shift)` where `shift = msb(v) - 5`.
    counts: Box<[u64; LATENCY_BUCKETS]>,
    count: u64,
    total: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: Box::new([0; LATENCY_BUCKETS]),
            count: 0,
            total: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    fn bucket_index(value: u64) -> usize {
        let msb = 63 - (value | 1).leading_zeros();
        let shift = msb.saturating_sub(SUB_BITS);
        (shift as usize) * 32 + (value >> shift) as usize
    }

    /// The largest value that maps to `index` (the bucket's inclusive
    /// upper bound), used as the quantile representative.
    fn bucket_upper(index: usize) -> u64 {
        if index < 64 {
            return index as u64;
        }
        let shift = (index / 32 - 1) as u32;
        let pos = (index - shift as usize * 32) as u64;
        ((pos + 1) << shift) - 1
    }

    /// Records one sample.
    pub fn record(&mut self, micros: u64) {
        self.counts[Self::bucket_index(micros)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(micros);
        self.max = self.max.max(micros);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating), in microseconds.
    #[must_use]
    pub fn total_micros(&self) -> u64 {
        self.total
    }

    /// Exact maximum sample, in microseconds.
    #[must_use]
    pub fn max_micros(&self) -> u64 {
        self.max
    }

    /// Folds another histogram into this one: bucket-wise addition with
    /// exact `count`/`total`/`max` (used to merge per-worker histograms
    /// into a run total).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (0.0 ≤ q ≤ 1.0) by nearest-rank over the
    /// buckets; `0` with no samples. Exact for samples below 64 µs,
    /// otherwise the upper bound of the hit sub-bucket, clamped to the
    /// true maximum.
    #[must_use]
    pub fn quantile_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(index).min(self.max);
            }
        }
        self.max
    }
}

/// Counters and latency samples for one serve session. Obtained from
/// [`Server::run`](crate::Server::run) as part of the summary, or
/// snapshotted live.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Request lines received (including unparseable ones).
    pub requests: u64,
    /// Lines that failed to parse or validate (each got an `error`
    /// response).
    pub parse_errors: u64,
    /// `ok` responses (fresh or cached).
    pub responses_ok: u64,
    /// `error` responses for requests that were admitted but could not
    /// be analysed (double panic, rejected options).
    pub responses_error: u64,
    /// `overloaded` responses: requests shed by admission control.
    pub responses_overloaded: u64,
    /// `cancelled` responses: requests drained unprocessed at shutdown.
    pub responses_cancelled: u64,
    /// Verified cache hits.
    pub cache_hits: u64,
    /// Cache misses (absent entry, or a verified content mismatch).
    pub cache_misses: u64,
    /// Entries published to the cache.
    pub cache_writes: u64,
    /// Corrupt entries quarantined (each also counts a miss).
    pub cache_quarantined: u64,
    /// Sequential retries after a quarantined worker panic.
    pub retries: u64,
    /// Worker panics caught at the request boundary (injected or real).
    pub worker_panics: u64,
    /// Faults injected by the active [`FaultPlan`](crate::FaultPlan).
    pub faults_injected: u64,
    /// Requests whose budget tripped (responses carried
    /// `verdict:"unknown"` with a truncation reason).
    pub budget_trips: u64,
    /// Per-request wall latency distribution in microseconds
    /// (admission to response write), one sample per `ok`/`error`
    /// response, held in a fixed-size log-scale histogram.
    pub latencies: LatencyHistogram,
}

impl ServeStats {
    /// Records one completed request's latency.
    pub fn record_latency(&mut self, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.latencies.record(micros);
    }

    /// Number of latency samples.
    #[must_use]
    pub fn latency_count(&self) -> u64 {
        self.latencies.count()
    }

    /// Sum of all latency samples, in microseconds.
    #[must_use]
    pub fn latency_total_micros(&self) -> u64 {
        self.latencies.total_micros()
    }

    /// The `q`-quantile latency (0.0 ≤ q ≤ 1.0) by nearest-rank over
    /// the histogram buckets; `0` with no samples.
    #[must_use]
    pub fn latency_quantile_micros(&self, q: f64) -> u64 {
        self.latencies.quantile_micros(q)
    }

    /// The maximum latency sample, in microseconds.
    #[must_use]
    pub fn latency_max_micros(&self) -> u64 {
        self.latencies.max_micros()
    }

    /// Serialises the section to one line of schema-stable JSON. Key
    /// order is fixed; all values are non-negative integers, so the
    /// golden-schema tests can parse it the same way they parse the
    /// exploration stats line.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\"schema\":\"drfcheck-stats-v2\",\"section\":\"serve\",\"serve\":{");
        let mut first = true;
        for (key, value) in [
            ("requests", self.requests),
            ("parse_errors", self.parse_errors),
            ("responses_ok", self.responses_ok),
            ("responses_error", self.responses_error),
            ("responses_overloaded", self.responses_overloaded),
            ("responses_cancelled", self.responses_cancelled),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("cache_writes", self.cache_writes),
            ("cache_quarantined", self.cache_quarantined),
            ("retries", self.retries),
            ("worker_panics", self.worker_panics),
            ("faults_injected", self.faults_injected),
            ("budget_trips", self.budget_trips),
            ("latency_count", self.latency_count()),
            ("latency_total_micros", self.latency_total_micros()),
            ("latency_p50_micros", self.latency_quantile_micros(0.50)),
            ("latency_p99_micros", self.latency_quantile_micros(0.99)),
            ("latency_max_micros", self.latency_max_micros()),
        ] {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!("\"{key}\":{value}"));
        }
        s.push_str("}}");
        s
    }

    /// Renders a human-readable multi-line summary (what `--stats`
    /// prints on stderr after a session).
    #[must_use]
    pub fn to_human(&self) -> String {
        format!(
            "--- serve stats ---\n\
             requests: {} received, {} parse errors\n\
             responses: {} ok, {} error, {} overloaded (shed), {} cancelled\n\
             cache: {} hits, {} misses, {} writes, {} quarantined\n\
             degradation: {} worker panics, {} retries, {} injected faults, {} budget trips\n\
             latency (µs): p50 {}, p99 {}, max {} over {} requests",
            self.requests,
            self.parse_errors,
            self.responses_ok,
            self.responses_error,
            self.responses_overloaded,
            self.responses_cancelled,
            self.cache_hits,
            self.cache_misses,
            self.cache_writes,
            self.cache_quarantined,
            self.worker_panics,
            self.retries,
            self.faults_injected,
            self.budget_trips,
            self.latency_quantile_micros(0.50),
            self.latency_quantile_micros(0.99),
            self.latency_max_micros(),
            self.latency_count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_nearest_rank() {
        let mut s = ServeStats::default();
        for v in [5u64, 1, 3, 2, 4] {
            s.latencies.record(v);
        }
        assert_eq!(s.latency_quantile_micros(0.5), 3);
        assert_eq!(s.latency_quantile_micros(0.99), 5);
        assert_eq!(s.latency_quantile_micros(1.0), 5);
        assert_eq!(s.latency_max_micros(), 5);
        assert_eq!(s.latency_total_micros(), 15);
        assert_eq!(ServeStats::default().latency_quantile_micros(0.99), 0);
    }

    #[test]
    fn histogram_is_exact_below_64_and_bounded_above() {
        let mut h = LatencyHistogram::default();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.quantile_micros(0.5), 31);
        assert_eq!(h.quantile_micros(1.0), 63);
        // A large sample lands in a log bucket: the reported quantile
        // overestimates by at most one sub-bucket (1/32 relative).
        let mut big = LatencyHistogram::default();
        big.record(1_000_000);
        let q = big.quantile_micros(0.5);
        assert!(q >= 1_000_000, "quantile {q} under-reports");
        assert!(
            q <= 1_000_000 + 1_000_000 / 32 + 1,
            "quantile {q} off by more than a sub-bucket"
        );
        assert_eq!(big.max_micros(), 1_000_000);
        assert_eq!(
            big.quantile_micros(1.0),
            1_000_000,
            "p100 clamps to the exact max"
        );
    }

    #[test]
    fn a_million_samples_stay_constant_size() {
        let mut h = LatencyHistogram::default();
        let fixed =
            std::mem::size_of::<LatencyHistogram>() + std::mem::size_of_val(h.counts.as_ref());
        let mut total = 0u64;
        for i in 0..1_000_000u64 {
            // Spread samples across seven decades, including u64::MAX.
            let v = if i % 100_000 == 0 {
                u64::MAX
            } else {
                (i * 37) % 10_000_000
            };
            h.record(v);
            total = total.saturating_add(v);
        }
        // The histogram owns no heap storage beyond its fixed bucket
        // array, so its footprint after a million samples is exactly
        // its footprint before any: size_of the struct plus the
        // boxed bucket array.
        let after =
            std::mem::size_of::<LatencyHistogram>() + std::mem::size_of_val(h.counts.as_ref());
        assert_eq!(after, fixed, "bucket storage must not grow with samples");
        assert_eq!(h.count(), 1_000_000);
        assert_eq!(h.total_micros(), total);
        assert_eq!(h.max_micros(), u64::MAX);
        let p50 = h.quantile_micros(0.5);
        assert!(p50 > 0 && p50 < 10_000_000 + 10_000_000 / 32);
    }

    #[test]
    fn json_has_the_stable_preamble_and_no_negatives() {
        let mut s = ServeStats {
            requests: 3,
            ..ServeStats::default()
        };
        s.record_latency(Duration::from_micros(250));
        let json = s.to_json();
        assert!(
            json.starts_with("{\"schema\":\"drfcheck-stats-v2\",\"section\":\"serve\",\"serve\":{")
        );
        assert!(json.contains("\"requests\":3"));
        assert!(json.contains("\"latency_count\":1"));
        assert!(!json.contains(":-"), "no negative counters: {json}");
    }
}
