//! The syntactic rewrite rules of Fig. 10 (elimination) and Fig. 11
//! (reordering).

use std::fmt;

use transafety_lang::{Operand, Stmt};

/// The name of a syntactic rewrite rule, as in Fig. 10–11 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleName {
    /// `r1:=x; S; r2:=x  ⇒  r1:=x; S; r2:=r1` — redundant read after read.
    ERar,
    /// `x:=r1; S; r2:=x  ⇒  x:=r1; S; r2:=r1` — redundant read after write.
    ERaw,
    /// `r:=x; S; x:=r  ⇒  r:=x; S` — redundant write after read.
    EWar,
    /// `x:=r1; S; x:=r2  ⇒  S; x:=r2` — overwritten write.
    EWbw,
    /// `r:=x; r:=i  ⇒  r:=i` — irrelevant read.
    EIr,
    /// `r1:=x; r2:=y  ⇒  r2:=y; r1:=x` — read/read reordering.
    RRr,
    /// `x:=r1; y:=r2  ⇒  y:=r2; x:=r1` — write/write reordering.
    RWw,
    /// `x:=r1; r2:=y  ⇒  r2:=y; x:=r1` — write/read reordering.
    RWr,
    /// `r1:=x; y:=r2  ⇒  y:=r2; r1:=x` — read/write reordering.
    RRw,
    /// `x:=r; lock m  ⇒  lock m; x:=r` — roach-motel write-into-lock.
    RWl,
    /// `r:=x; lock m  ⇒  lock m; r:=x` — roach-motel read-into-lock.
    RRl,
    /// `unlock m; x:=r  ⇒  x:=r; unlock m` — roach-motel write-into-unlock.
    RUw,
    /// `unlock m; r:=x  ⇒  r:=x; unlock m` — roach-motel read-into-unlock.
    RUr,
    /// `print r1; r2:=x  ⇒  r2:=x; print r1` — external/read reordering.
    RXr,
    /// `print r1; x:=r2  ⇒  x:=r2; print r1` — external/write reordering.
    RXw,
    /// `r:=ri; A  ⇒  A; r:=ri` — commuting a register move downwards.
    ///
    /// Register moves issue no memory action (Fig. 7's REGS rule), so
    /// this is a *trace-preserving* transformation in the sense of §2.1:
    /// it is the identity on tracesets and trivially safe. It is needed
    /// in practice because the parser's desugaring of `x := 1` inserts
    /// moves between the memory statements the Fig. 10/11 rules match on.
    TMovDown,
    /// `A; r:=ri  ⇒  r:=ri; A` — commuting a register move upwards.
    TMovUp,
}

impl RuleName {
    /// All elimination rules (Fig. 10).
    pub const ELIMINATIONS: [RuleName; 5] = [
        RuleName::ERar,
        RuleName::ERaw,
        RuleName::EWar,
        RuleName::EWbw,
        RuleName::EIr,
    ];

    /// The trace-preserving move-commutation rules (identity on
    /// tracesets; see §2.1 "Trace preserving transformations").
    pub const TRACE_PRESERVING: [RuleName; 2] = [RuleName::TMovDown, RuleName::TMovUp];

    /// All reordering rules (Fig. 11).
    pub const REORDERINGS: [RuleName; 10] = [
        RuleName::RRr,
        RuleName::RWw,
        RuleName::RWr,
        RuleName::RRw,
        RuleName::RWl,
        RuleName::RRl,
        RuleName::RUw,
        RuleName::RUr,
        RuleName::RXr,
        RuleName::RXw,
    ];

    /// Is this a Fig. 10 elimination rule?
    #[must_use]
    pub fn is_elimination(self) -> bool {
        RuleName::ELIMINATIONS.contains(&self)
    }

    /// Is this a Fig. 11 reordering rule?
    #[must_use]
    pub fn is_reordering(self) -> bool {
        RuleName::REORDERINGS.contains(&self)
    }

    /// Is this a trace-preserving (identity-on-tracesets) rule?
    #[must_use]
    pub fn is_trace_preserving(self) -> bool {
        RuleName::TRACE_PRESERVING.contains(&self)
    }

    /// Is this rule *subsumed* by the memory model — i.e. does the
    /// hardware itself already perform the transformation, so that
    /// applying it can introduce no behaviour the model did not allow?
    ///
    /// Under SC only the trace-preserving commutations qualify. TSO's
    /// store buffers perform write→read reordering and store-to-load
    /// forwarding (§8's fragment: R-WR, E-RAW, E-RAR); PSO's
    /// per-location buffers additionally reorder writes (R-WW). These
    /// are exactly the fragments [`tso_fragment`](crate) callers filter
    /// closures by.
    #[must_use]
    pub fn subsumed_under(self, model: transafety_traces::MemoryModelKind) -> bool {
        use transafety_traces::MemoryModelKind as Mk;
        if self.is_trace_preserving() {
            return true;
        }
        match model {
            Mk::Sc => false,
            Mk::Tso => matches!(self, RuleName::RWr | RuleName::ERaw | RuleName::ERar),
            Mk::Pso => matches!(
                self,
                RuleName::RWr | RuleName::ERaw | RuleName::ERar | RuleName::RWw
            ),
        }
    }
}

impl fmt::Display for RuleName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleName::ERar => "E-RAR",
            RuleName::ERaw => "E-RAW",
            RuleName::EWar => "E-WAR",
            RuleName::EWbw => "E-WBW",
            RuleName::EIr => "E-IR",
            RuleName::RRr => "R-RR",
            RuleName::RWw => "R-WW",
            RuleName::RWr => "R-WR",
            RuleName::RRw => "R-RW",
            RuleName::RWl => "R-WL",
            RuleName::RRl => "R-RL",
            RuleName::RUw => "R-UW",
            RuleName::RUr => "R-UR",
            RuleName::RXr => "R-XR",
            RuleName::RXw => "R-XW",
            RuleName::TMovDown => "T-MOV↓",
            RuleName::TMovUp => "T-MOV↑",
        };
        f.write_str(s)
    }
}

/// Does the intervening statement `s` satisfy the Fig. 10 side
/// conditions: sync-free, not mentioning location `x`, and not
/// mentioning any of `regs`?
fn intervening_ok(s: &Stmt, x: transafety_traces::Loc, regs: &[transafety_lang::Reg]) -> bool {
    s.is_sync_free() && !s.shared_locs().contains(&x) && regs.iter().all(|r| !s.regs().contains(r))
}

/// Tries every *pair* rule on the adjacent statements `(a, b)`; returns
/// the applicable rewrites as `(rule, replacement)`.
pub(crate) fn pair_rewrites(a: &Stmt, b: &Stmt) -> Vec<(RuleName, Vec<Stmt>)> {
    let mut out = Vec::new();
    match (a, b) {
        // --- Fig. 10 eliminations with an empty S --------------------
        (Stmt::Load { dst: r1, loc: x }, Stmt::Load { dst: r2, loc: x2 })
            if x == x2 && !x.is_volatile() =>
        {
            out.push((
                RuleName::ERar,
                vec![
                    a.clone(),
                    Stmt::Move {
                        dst: *r2,
                        src: Operand::Reg(*r1),
                    },
                ],
            ));
        }
        (Stmt::Store { loc: x, src: r1 }, Stmt::Load { dst: r2, loc: x2 })
            if x == x2 && !x.is_volatile() =>
        {
            out.push((
                RuleName::ERaw,
                vec![
                    a.clone(),
                    Stmt::Move {
                        dst: *r2,
                        src: Operand::Reg(*r1),
                    },
                ],
            ));
        }
        (Stmt::Load { dst: r, loc: x }, Stmt::Store { loc: x2, src: r2 })
            if x == x2 && r == r2 && !x.is_volatile() =>
        {
            out.push((RuleName::EWar, vec![a.clone()]));
        }
        (Stmt::Store { loc: x, src: _ }, Stmt::Store { loc: x2, src: _ })
            if x == x2 && !x.is_volatile() =>
        {
            out.push((RuleName::EWbw, vec![b.clone()]));
        }
        _ => {}
    }
    // E-IR: r:=x; r:=i
    if let (
        Stmt::Load { dst: r, loc: x },
        Stmt::Move {
            dst: r2,
            src: Operand::Const(_),
        },
    ) = (a, b)
    {
        if r == r2 && !x.is_volatile() {
            out.push((RuleName::EIr, vec![b.clone()]));
        }
    }
    // --- Fig. 11 reorderings -----------------------------------------
    let swapped = vec![b.clone(), a.clone()];
    match (a, b) {
        // R-RR: r1:=x; r2:=y  ⇒  r2:=y; r1:=x   (r1 ≠ r2, x not volatile)
        (Stmt::Load { dst: r1, loc: x }, Stmt::Load { dst: r2, loc: _ })
            if r1 != r2 && !x.is_volatile() =>
        {
            out.push((RuleName::RRr, swapped.clone()));
        }
        // R-WW: x:=r1; y:=r2  ⇒  y:=r2; x:=r1   (x ≠ y, y not volatile)
        (Stmt::Store { loc: x, .. }, Stmt::Store { loc: y, .. }) if x != y && !y.is_volatile() => {
            out.push((RuleName::RWw, swapped.clone()));
        }
        // R-WR: x:=r1; r2:=y  ⇒  r2:=y; x:=r1
        //       (r1 ≠ r2, x ≠ y, x or y not volatile)
        (Stmt::Store { loc: x, src: r1 }, Stmt::Load { dst: r2, loc: y })
            if r1 != r2 && x != y && (!x.is_volatile() || !y.is_volatile()) =>
        {
            out.push((RuleName::RWr, swapped.clone()));
        }
        // R-RW: r1:=x; y:=r2  ⇒  y:=r2; r1:=x
        //       (r1 ≠ r2, x ≠ y, x and y not volatile)
        (Stmt::Load { dst: r1, loc: x }, Stmt::Store { loc: y, src: r2 })
            if r1 != r2 && x != y && !x.is_volatile() && !y.is_volatile() =>
        {
            out.push((RuleName::RRw, swapped.clone()));
        }
        // R-WL / R-RL: sink a normal access below a later lock.
        (Stmt::Store { loc: x, .. }, Stmt::Lock(_)) if !x.is_volatile() => {
            out.push((RuleName::RWl, swapped.clone()));
        }
        (Stmt::Load { loc: x, .. }, Stmt::Lock(_)) if !x.is_volatile() => {
            out.push((RuleName::RRl, swapped.clone()));
        }
        // R-UW / R-UR: hoist a normal access above an earlier unlock.
        (Stmt::Unlock(_), Stmt::Store { loc: x, .. }) if !x.is_volatile() => {
            out.push((RuleName::RUw, swapped.clone()));
        }
        (Stmt::Unlock(_), Stmt::Load { loc: x, .. }) if !x.is_volatile() => {
            out.push((RuleName::RUr, swapped.clone()));
        }
        // R-XR / R-XW: swap a print with a later normal access.
        (Stmt::Print(r1), Stmt::Load { dst: r2, loc: x }) if r1 != r2 && !x.is_volatile() => {
            out.push((RuleName::RXr, swapped.clone()));
        }
        (Stmt::Print(_), Stmt::Store { loc: x, .. }) if !x.is_volatile() => {
            out.push((RuleName::RXw, swapped));
        }
        _ => {}
    }
    // --- trace-preserving move commutation ---------------------------
    if let Stmt::Move { dst, src } = a {
        if move_commutes_with(*dst, *src, b) {
            out.push((RuleName::TMovDown, vec![b.clone(), a.clone()]));
        }
    }
    if let Stmt::Move { dst, src } = b {
        if move_commutes_with(*dst, *src, a) {
            out.push((RuleName::TMovUp, vec![b.clone(), a.clone()]));
        }
    }
    out
}

/// The register written by an atomic statement, if any.
fn written_reg(s: &Stmt) -> Option<transafety_lang::Reg> {
    match s {
        Stmt::Load { dst, .. } | Stmt::Move { dst, .. } => Some(*dst),
        _ => None,
    }
}

/// May `r := src` commute with the adjacent atomic statement `other`
/// without changing any thread trace? Requires `other` to be atomic
/// (no nested control flow), to not mention `r`, and to not overwrite a
/// register the move reads.
fn move_commutes_with(r: transafety_lang::Reg, src: Operand, other: &Stmt) -> bool {
    let atomic = matches!(
        other,
        Stmt::Load { .. }
            | Stmt::Store { .. }
            | Stmt::Move { .. }
            | Stmt::Lock(_)
            | Stmt::Unlock(_)
            | Stmt::Skip
            | Stmt::Print(_)
    );
    if !atomic || other.regs().contains(&r) {
        return false;
    }
    match src {
        Operand::Reg(rs) => written_reg(other) != Some(rs),
        Operand::Const(_) => true,
    }
}

/// Tries every Fig. 10 elimination rule on `(a, S, b)` where `S` is an
/// intervening *sequence* of statements, each satisfying the rule's side
/// conditions.
///
/// The paper's `S` is a single statement, but `{L}` blocks make any
/// statement list a statement, so matching a flat segment is equivalent
/// to matching the rule with `S = {s1; …; sk}` — the engine does this so
/// that programs need not be re-blocked for the rules to fire.
pub(crate) fn segment_rewrites(a: &Stmt, middle: &[Stmt], b: &Stmt) -> Vec<(RuleName, Vec<Stmt>)> {
    let mut out = Vec::new();
    let ok = |x: transafety_traces::Loc, regs: &[transafety_lang::Reg]| {
        middle.iter().all(|s| intervening_ok(s, x, regs))
    };
    let with_middle = |first: Option<&Stmt>, last: Stmt| {
        let mut v: Vec<Stmt> = first.into_iter().cloned().collect();
        v.extend(middle.iter().cloned());
        v.push(last);
        v
    };
    match (a, b) {
        (Stmt::Load { dst: r1, loc: x }, Stmt::Load { dst: r2, loc: x2 })
            if x == x2 && !x.is_volatile() && ok(*x, &[*r1, *r2]) =>
        {
            out.push((
                RuleName::ERar,
                with_middle(
                    Some(a),
                    Stmt::Move {
                        dst: *r2,
                        src: Operand::Reg(*r1),
                    },
                ),
            ));
        }
        (Stmt::Store { loc: x, src: r1 }, Stmt::Load { dst: r2, loc: x2 })
            if x == x2 && !x.is_volatile() && ok(*x, &[*r1, *r2]) =>
        {
            out.push((
                RuleName::ERaw,
                with_middle(
                    Some(a),
                    Stmt::Move {
                        dst: *r2,
                        src: Operand::Reg(*r1),
                    },
                ),
            ));
        }
        (Stmt::Load { dst: r, loc: x }, Stmt::Store { loc: x2, src: r2 })
            if x == x2 && r == r2 && !x.is_volatile() && ok(*x, &[*r]) =>
        {
            let mut v = vec![a.clone()];
            v.extend(middle.iter().cloned());
            out.push((RuleName::EWar, v));
        }
        (Stmt::Store { loc: x, src: r1 }, Stmt::Store { loc: x2, src: r2 })
            if x == x2 && !x.is_volatile() && ok(*x, &[*r1, *r2]) =>
        {
            out.push((RuleName::EWbw, with_middle(None, b.clone())));
        }
        _ => {}
    }
    out
}

/// Backwards-compatible single-statement `S` form (used by the rule
/// unit tests; the engine matches segments directly).
#[cfg(test)]
pub(crate) fn triple_rewrites(a: &Stmt, s: &Stmt, b: &Stmt) -> Vec<(RuleName, Vec<Stmt>)> {
    segment_rewrites(a, std::slice::from_ref(s), b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::Reg;
    use transafety_traces::{Loc, Monitor, Value};

    fn x() -> Loc {
        Loc::normal(0)
    }
    fn y() -> Loc {
        Loc::normal(1)
    }
    fn vol() -> Loc {
        Loc::volatile(2)
    }
    fn r(i: u32) -> Reg {
        Reg::new(i)
    }
    fn load(reg: Reg, loc: Loc) -> Stmt {
        Stmt::Load { dst: reg, loc }
    }
    fn store(loc: Loc, reg: Reg) -> Stmt {
        Stmt::Store { loc, src: reg }
    }

    fn rules_of(out: &[(RuleName, Vec<Stmt>)]) -> Vec<RuleName> {
        out.iter().map(|(r, _)| *r).collect()
    }

    #[test]
    fn erar_pair() {
        let out = pair_rewrites(&load(r(1), x()), &load(r(2), x()));
        assert!(rules_of(&out).contains(&RuleName::ERar));
        // result replaces the second load by a register move
        let (_, repl) = out.iter().find(|(n, _)| *n == RuleName::ERar).unwrap();
        assert_eq!(
            repl[1],
            Stmt::Move {
                dst: r(2),
                src: Operand::Reg(r(1))
            }
        );
        // volatile locations are excluded
        assert!(pair_rewrites(&load(r(1), vol()), &load(r(2), vol())).is_empty());
    }

    #[test]
    fn ewar_requires_same_register() {
        let out = pair_rewrites(&load(r(1), x()), &store(x(), r(1)));
        assert!(rules_of(&out).contains(&RuleName::EWar));
        let out2 = pair_rewrites(&load(r(1), x()), &store(x(), r(2)));
        assert!(!rules_of(&out2).contains(&RuleName::EWar));
    }

    #[test]
    fn ewbw_keeps_the_later_write() {
        let out = pair_rewrites(&store(x(), r(1)), &store(x(), r(2)));
        let (_, repl) = out.iter().find(|(n, _)| *n == RuleName::EWbw).unwrap();
        assert_eq!(repl, &vec![store(x(), r(2))]);
    }

    #[test]
    fn eir_requires_constant_overwrite_of_same_register() {
        let mv = Stmt::Move {
            dst: r(1),
            src: Operand::Const(Value::new(3)),
        };
        let out = pair_rewrites(&load(r(1), x()), &mv);
        assert!(rules_of(&out).contains(&RuleName::EIr));
        let mv_other = Stmt::Move {
            dst: r(2),
            src: Operand::Const(Value::new(3)),
        };
        assert!(!rules_of(&pair_rewrites(&load(r(1), x()), &mv_other)).contains(&RuleName::EIr));
        let mv_reg = Stmt::Move {
            dst: r(1),
            src: Operand::Reg(r(2)),
        };
        assert!(!rules_of(&pair_rewrites(&load(r(1), x()), &mv_reg)).contains(&RuleName::EIr));
    }

    #[test]
    fn rrr_side_conditions() {
        // distinct registers, first location not volatile
        assert!(
            rules_of(&pair_rewrites(&load(r(1), x()), &load(r(2), y()))).contains(&RuleName::RRr)
        );
        // same register blocked
        assert!(
            !rules_of(&pair_rewrites(&load(r(1), x()), &load(r(1), y()))).contains(&RuleName::RRr)
        );
        // volatile first location blocked (acquire may not move down)
        assert!(
            !rules_of(&pair_rewrites(&load(r(1), vol()), &load(r(2), y())))
                .contains(&RuleName::RRr)
        );
        // volatile second location allowed (normal read sinks below acquire)
        assert!(
            rules_of(&pair_rewrites(&load(r(1), x()), &load(r(2), vol()))).contains(&RuleName::RRr)
        );
        // same normal location allowed (reads never conflict)
        assert!(
            rules_of(&pair_rewrites(&load(r(1), x()), &load(r(2), x()))).contains(&RuleName::RRr)
        );
    }

    #[test]
    fn rww_and_rwr_and_rrw_side_conditions() {
        assert!(
            rules_of(&pair_rewrites(&store(x(), r(1)), &store(y(), r(2)))).contains(&RuleName::RWw)
        );
        assert!(
            !rules_of(&pair_rewrites(&store(x(), r(1)), &store(x(), r(2))))
                .contains(&RuleName::RWw)
        );
        // volatile first write may sink below a later normal write (release)
        assert!(
            rules_of(&pair_rewrites(&store(vol(), r(1)), &store(y(), r(2))))
                .contains(&RuleName::RWw)
        );
        // but a normal write may not sink below a volatile write
        assert!(
            !rules_of(&pair_rewrites(&store(x(), r(1)), &store(vol(), r(2))))
                .contains(&RuleName::RWw)
        );
        // R-WR: one of the two may be volatile
        assert!(
            rules_of(&pair_rewrites(&store(x(), r(1)), &load(r(2), vol())))
                .contains(&RuleName::RWr)
        );
        assert!(
            rules_of(&pair_rewrites(&store(vol(), r(1)), &load(r(2), y())))
                .contains(&RuleName::RWr)
        );
        // R-RW: neither may be volatile
        assert!(
            rules_of(&pair_rewrites(&load(r(1), x()), &store(y(), r(2)))).contains(&RuleName::RRw)
        );
        assert!(
            !rules_of(&pair_rewrites(&load(r(1), vol()), &store(y(), r(2))))
                .contains(&RuleName::RRw)
        );
        assert!(
            !rules_of(&pair_rewrites(&load(r(1), x()), &store(vol(), r(2))))
                .contains(&RuleName::RRw)
        );
    }

    #[test]
    fn roach_motel_rules() {
        let m = Monitor::new(0);
        assert!(
            rules_of(&pair_rewrites(&store(x(), r(0)), &Stmt::Lock(m))).contains(&RuleName::RWl)
        );
        assert!(rules_of(&pair_rewrites(&load(r(0), x()), &Stmt::Lock(m))).contains(&RuleName::RRl));
        assert!(
            rules_of(&pair_rewrites(&Stmt::Unlock(m), &store(x(), r(0)))).contains(&RuleName::RUw)
        );
        assert!(
            rules_of(&pair_rewrites(&Stmt::Unlock(m), &load(r(0), x()))).contains(&RuleName::RUr)
        );
        // the opposite directions are never generated
        assert!(pair_rewrites(&Stmt::Lock(m), &store(x(), r(0))).is_empty());
        assert!(pair_rewrites(&store(x(), r(0)), &Stmt::Unlock(m)).is_empty());
        // volatile accesses never move across locks
        assert!(pair_rewrites(&store(vol(), r(0)), &Stmt::Lock(m)).is_empty());
    }

    #[test]
    fn external_rules() {
        assert!(
            rules_of(&pair_rewrites(&Stmt::Print(r(1)), &load(r(2), x()))).contains(&RuleName::RXr)
        );
        assert!(
            !rules_of(&pair_rewrites(&Stmt::Print(r(1)), &load(r(1), x())))
                .contains(&RuleName::RXr)
        );
        assert!(
            rules_of(&pair_rewrites(&Stmt::Print(r(1)), &store(x(), r(1))))
                .contains(&RuleName::RXw)
        );
        assert!(pair_rewrites(&Stmt::Print(r(1)), &store(vol(), r(1))).is_empty());
    }

    #[test]
    fn triple_rules_respect_intervening_conditions() {
        let s_ok = Stmt::Move {
            dst: r(5),
            src: Operand::Const(Value::new(1)),
        };
        let out = triple_rewrites(&load(r(1), x()), &s_ok, &load(r(2), x()));
        assert!(rules_of(&out).contains(&RuleName::ERar));
        // S touching x is rejected
        let s_x = load(r(5), x());
        assert!(triple_rewrites(&load(r(1), x()), &s_x, &load(r(2), x())).is_empty());
        // S touching r1 is rejected
        let s_r1 = Stmt::Move {
            dst: r(1),
            src: Operand::Const(Value::ZERO),
        };
        assert!(triple_rewrites(&load(r(1), x()), &s_r1, &load(r(2), x())).is_empty());
        // S with synchronisation is rejected
        let s_sync = Stmt::Lock(Monitor::new(0));
        assert!(triple_rewrites(&load(r(1), x()), &s_sync, &load(r(2), x())).is_empty());
        // other-location accesses in S are fine
        let s_y = load(r(5), y());
        assert!(!triple_rewrites(&load(r(1), x()), &s_y, &load(r(2), x())).is_empty());
    }

    #[test]
    fn rule_classification() {
        for r in RuleName::ELIMINATIONS {
            assert!(r.is_elimination() && !r.is_reordering());
        }
        for r in RuleName::REORDERINGS {
            assert!(r.is_reordering() && !r.is_elimination());
        }
        assert_eq!(RuleName::ERar.to_string(), "E-RAR");
        assert_eq!(RuleName::RUr.to_string(), "R-UR");
    }
}
