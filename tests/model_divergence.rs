//! Cross-model divergence on the classic litmus shapes: the pluggable
//! backends must produce exactly the behaviour-set splits the memory
//! models are defined by. SB splits SC from both buffered models, MP
//! splits TSO (FIFO buffer) from PSO (per-location buffers), and IRIW
//! splits neither — both machines are store-atomic, so the §8 fragments
//! never need to explain it.

use transafety::checker::Analysis;
use transafety::lang::{parse_program, Program};
use transafety::traces::{MemoryModelKind, Value};
use transafety::Verdict;

fn p(src: &str) -> Program {
    parse_program(src).unwrap().program
}

fn v(ns: &[u32]) -> Vec<Value> {
    ns.iter().copied().map(Value::new).collect()
}

fn behaviours_under(
    program: &Program,
    model: MemoryModelKind,
) -> transafety::interleaving::Behaviours {
    let report = Analysis::new().model(model).run(program);
    assert!(
        report.behaviours.complete,
        "{model}: exploration must be exhaustive for a forbids/allows claim"
    );
    report.behaviours.value
}

#[test]
fn sb_relaxation_appears_under_tso_and_pso_only() {
    let sb = p("x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;");
    let stale = v(&[0, 0]);
    assert!(!behaviours_under(&sb, MemoryModelKind::Sc).contains(&stale));
    assert!(behaviours_under(&sb, MemoryModelKind::Tso).contains(&stale));
    assert!(behaviours_under(&sb, MemoryModelKind::Pso).contains(&stale));
}

#[test]
fn mp_reordering_appears_under_pso_only() {
    // Message passing through a plain flag: the stale 1,0 outcome needs
    // the data write to overtake the flag write, which a FIFO buffer
    // (TSO) cannot do but per-location buffers (PSO) can.
    let mp = p("x := 1; flag := 1; || r1 := flag; r2 := x; print r1; print r2;");
    let stale = v(&[1, 0]);
    assert!(!behaviours_under(&mp, MemoryModelKind::Sc).contains(&stale));
    assert!(!behaviours_under(&mp, MemoryModelKind::Tso).contains(&stale));
    assert!(behaviours_under(&mp, MemoryModelKind::Pso).contains(&stale));
}

#[test]
fn iriw_is_forbidden_under_every_backend() {
    // Independent reads of independent writes: the two reader threads
    // disagreeing on the write order requires non-store-atomicity,
    // which neither buffered machine has (buffers only forward to
    // their own thread). Behaviours record prints in execution order
    // across threads, so each reader prints a distinct marker exactly
    // when it observed "its" write first; the forbidden outcome is
    // both markers appearing, in either order.
    let iriw = p("x := 1; \
                  || y := 1; \
                  || r1 := x; r2 := y; if (r1 == 1) { if (r2 == 0) print 1; } \
                  || r3 := y; r4 := x; if (r3 == 1) { if (r4 == 0) print 2; }");
    for model in MemoryModelKind::ALL {
        let b = behaviours_under(&iriw, model);
        assert!(
            !b.contains(&v(&[1, 2])) && !b.contains(&v(&[2, 1])),
            "{model} exhibited the IRIW split"
        );
        assert!(
            b.contains(&v(&[1])),
            "{model} lost the one-sided IRIW outcome"
        );
    }
}

#[test]
fn tso_and_pso_behaviours_contain_the_sc_behaviours() {
    // The buffered machines only add executions (flushing eagerly
    // after every store replays SC), so their behaviour sets must be
    // supersets on every litmus shape above.
    for src in [
        "x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;",
        "x := 1; flag := 1; || r1 := flag; r2 := x; print r1; print r2;",
        "x := 1; r1 := x; r2 := y; print r1; print r2; || r3 := x; y := r3;",
    ] {
        let program = p(src);
        let sc = behaviours_under(&program, MemoryModelKind::Sc);
        for model in [MemoryModelKind::Tso, MemoryModelKind::Pso] {
            let relaxed = behaviours_under(&program, model);
            assert!(
                sc.is_subset(&relaxed),
                "{model} lost an SC behaviour on {src}"
            );
        }
    }
}

fn load_program(rel: &str) -> Program {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{rel}: {e}"));
    p(&src)
}

#[test]
fn dekker_mutual_exclusion_breaks_under_tso() {
    let dekker = load_program("programs/dekker.tsl");
    let both_entered = v(&[1, 1]);
    assert!(
        !behaviours_under(&dekker, MemoryModelKind::Sc).contains(&both_entered),
        "SC must uphold Dekker's mutual exclusion"
    );
    for model in [MemoryModelKind::Tso, MemoryModelKind::Pso] {
        assert!(
            behaviours_under(&dekker, model).contains(&both_entered),
            "{model} must break Dekker's entry protocol"
        );
    }
    // The plain flags race under every model — the DRF guarantee has
    // nothing to say about this program, which is why the divergence
    // is permitted at all.
    for model in MemoryModelKind::ALL {
        let report = Analysis::new().model(model).run(&dekker);
        assert_eq!(report.verdict, Verdict::Racy, "{model}");
    }
}

#[test]
fn store_buffer_publish_goes_stale_under_pso_only() {
    let publish = load_program("programs/store_buffer_publish.tsl");
    let stale = v(&[1, 0]);
    assert!(!behaviours_under(&publish, MemoryModelKind::Sc).contains(&stale));
    assert!(
        !behaviours_under(&publish, MemoryModelKind::Tso).contains(&stale),
        "the FIFO buffer preserves the publish order"
    );
    assert!(
        behaviours_under(&publish, MemoryModelKind::Pso).contains(&stale),
        "per-location buffers may flush the flag first"
    );
}
