//! Resource governance for the exploration engines: budgets,
//! cooperative cancellation and three-valued completeness reporting.
//!
//! The explorers enumerate state spaces that grow exponentially with
//! program size, so every entry point of the pipeline accepts a
//! [`BudgetGuard`] — a shared, lock-free runtime monitor built from a
//! declarative [`Budget`] (wall-clock deadline, interned-state cap,
//! interleaving cap) plus a [`CancelToken`] that external parties (a
//! SIGINT handler, a driving service) may trip at any time. Exploration
//! checks the guard cooperatively at every state visit; exceeding any
//! bound stops the search cleanly and records *which* bound tripped as
//! a [`TruncationReason`], so truncated runs are reported as
//! [`Completeness::Truncated`] and never misread as exhaustive proofs.
//!
//! The guard also counts recovered worker faults (panics isolated by
//! the parallel pool — see [`par`](crate::par)), letting drivers
//! degrade to the sequential reference engine and still tell the user
//! an internal fault occurred.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics::{Counter, CounterTally, ExploreMetrics};

/// Declarative resource bounds for one analysis run.
///
/// `None` disables a bound. The interleaving cap is always finite (it
/// guards the one entry point that materialises executions).
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use transafety_interleaving::Budget;
/// let b = Budget::unlimited()
///     .timeout(Duration::from_secs(30))
///     .max_states(1_000_000);
/// assert_eq!(b.deadline, Some(Duration::from_secs(30)));
/// assert_eq!(b.max_states, Some(1_000_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline for the whole analysis, measured from the
    /// moment the [`BudgetGuard`] is created.
    pub deadline: Option<Duration>,
    /// Cap on distinct explored states (across all phases of a run) —
    /// an approximate memory budget, since interned states dominate the
    /// explorers' footprint.
    pub max_states: Option<usize>,
    /// Cap on materialised maximal executions (the historical
    /// `ExploreLimits::max_interleavings` knob).
    pub max_interleavings: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            deadline: None,
            max_states: None,
            max_interleavings: 1_000_000,
        }
    }
}

impl Budget {
    /// A budget with no deadline and no state cap (the default).
    #[must_use]
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn timeout(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the explored-state cap.
    #[must_use]
    pub fn max_states(mut self, max: usize) -> Self {
        self.max_states = Some(max);
        self
    }

    /// Sets the interleaving-enumeration cap.
    #[must_use]
    pub fn max_interleavings(mut self, max: usize) -> Self {
        self.max_interleavings = max;
        self
    }

    /// Rejects degenerate bounds that can never admit any work. A zero
    /// deadline or a zero cap is always a configuration mistake — the
    /// run would trip its budget before exploring a single state — so
    /// drivers surface it as a usage error up front instead of letting
    /// it masquerade as a `BudgetExceeded` truncation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first degenerate
    /// bound found.
    pub fn validate(&self) -> Result<(), String> {
        if self.deadline == Some(Duration::ZERO) {
            return Err("timeout must be positive (a zero deadline can never \
                        admit any exploration)"
                .to_string());
        }
        if self.max_states == Some(0) {
            return Err("max-states must be positive (a zero cap can never \
                        admit any exploration)"
                .to_string());
        }
        if self.max_interleavings == 0 {
            return Err("max-interleavings must be positive (a zero cap can \
                        never admit any exploration)"
                .to_string());
        }
        Ok(())
    }
}

/// A shareable cooperative cancellation flag (an `Arc<AtomicBool>`
/// under the hood): clone it freely, hand one clone to the analysis and
/// keep another to [`cancel`](CancelToken::cancel) from a signal
/// handler, a timeout thread or another task.
///
/// # Example
///
/// ```
/// use transafety_interleaving::CancelToken;
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<std::sync::atomic::AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread (the
    /// flag is a plain atomic store, so this is also async-signal-safe
    /// in practice).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// The bound of a [`Budget`] that cut an exploration short.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetBound {
    /// The wall-clock deadline expired.
    WallClock,
    /// The explored-state cap was reached.
    States,
    /// The materialised-execution cap was reached.
    Interleavings,
    /// The per-execution action bound cut a looping program's
    /// behaviour set (the pre-existing `ExploreOptions::max_actions`
    /// fuel).
    Actions,
}

impl std::fmt::Display for BudgetBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BudgetBound::WallClock => "wall-clock deadline",
            BudgetBound::States => "explored-state cap",
            BudgetBound::Interleavings => "interleaving cap",
            BudgetBound::Actions => "per-execution action bound",
        })
    }
}

/// Why an analysis did not run to exhaustion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TruncationReason {
    /// A declared resource bound tripped.
    BudgetExceeded(BudgetBound),
    /// The [`CancelToken`] was tripped externally (SIGINT, caller).
    Cancelled,
    /// A worker panicked and the degraded result is still partial
    /// (when the sequential fallback completes, the run reports
    /// [`Completeness::Complete`] with a positive fault count instead).
    WorkerPanic,
}

impl std::fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TruncationReason::BudgetExceeded(b) => write!(f, "budget exceeded ({b})"),
            TruncationReason::Cancelled => f.write_str("cancelled"),
            TruncationReason::WorkerPanic => f.write_str("worker panic"),
        }
    }
}

/// Did an analysis run to exhaustion, and if not, why not?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Completeness {
    /// Every phase explored its full (bounded-semantics) state space;
    /// verdicts are exact.
    Complete,
    /// At least one phase was cut short; negative verdicts are
    /// inconclusive ("no race found *within budget*").
    Truncated {
        /// The first bound that tripped.
        reason: TruncationReason,
    },
}

impl Completeness {
    /// `true` when no bound tripped.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self, Completeness::Complete)
    }
}

impl std::fmt::Display for Completeness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Completeness::Complete => f.write_str("complete"),
            Completeness::Truncated { reason } => write!(f, "truncated: {reason}"),
        }
    }
}

/// A recoverable internal engine fault (a quarantined worker panic or a
/// violated pool invariant), reported by the parallel drivers instead
/// of aborting the process; callers degrade to the sequential reference
/// engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineFault {
    /// Human-readable description of the fault.
    pub message: String,
}

impl std::fmt::Display for EngineFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parallel engine fault: {}", self.message)
    }
}

impl std::error::Error for EngineFault {}

// Hard trip codes stored in `BudgetGuard::tripped` (0 = not tripped).
// Hard trips stop *every* subsequent phase of the run; the
// per-execution action fuel and the interleaving-enumeration cap are
// *soft* (recorded as truncation reasons, but e.g. a fuel-truncated
// behaviour phase must not abort the still-exact race search).
const TRIP_WALL_CLOCK: u8 = 1;
const TRIP_STATES: u8 = 2;
const TRIP_CANCELLED: u8 = 3;
const TRIP_WORKER_PANIC: u8 = 4;

/// The most `should_stop` calls that may elapse between two
/// `Instant::now()` reads. The stride is *adaptive*: each clock sample
/// schedules the next one roughly halfway to the deadline at the
/// observed visit rate, clamped to `[1, MAX_DEADLINE_STRIDE]` — a
/// geometric approach that bounds overshoot past the deadline to about
/// one visit's worth of work even when individual visits are expensive,
/// while cheap visits still amortise the ~20–30 ns clock read across up
/// to 64 calls. The cancel token, by contrast, is a single atomic load
/// and is consulted on *every* call, never stride-sampled.
const MAX_DEADLINE_STRIDE: usize = 64;

/// The runtime companion of a [`Budget`]: one guard is created per
/// analysis run, shared by every phase and worker thread, and checked
/// cooperatively at each state visit.
///
/// The guard is monotonic: the *first* bound to trip records its
/// [`TruncationReason`] and every later [`should_stop`] call returns
/// `true` immediately, so all phases of a run agree on why it stopped.
#[derive(Debug)]
pub struct BudgetGuard {
    start: Instant,
    deadline: Option<Duration>,
    max_states: Option<usize>,
    max_interleavings: usize,
    cancel: CancelToken,
    /// Short-circuit for guards with nothing to watch: the default
    /// entry points pay two branch instructions, not atomics + clock
    /// reads.
    inert: bool,
    states: AtomicUsize,
    checks: AtomicUsize,
    /// The `checks` value at which the wall clock is next sampled
    /// (see [`MAX_DEADLINE_STRIDE`]). Racy updates are benign: any
    /// worker's sample can trip the deadline, and a stale stride only
    /// means one extra clock read.
    next_deadline_check: AtomicUsize,
    /// The `checks` value of the previous clock sample, paired with
    /// `last_check_nanos`: together they give the per-visit cost over
    /// the most recent sampling window, which the adaptive stride is
    /// derived from.
    last_check_n: AtomicUsize,
    /// Elapsed nanoseconds (saturating) at the previous clock sample.
    last_check_nanos: std::sync::atomic::AtomicU64,
    tripped: AtomicU8,
    soft_interleavings: std::sync::atomic::AtomicBool,
    soft_actions: std::sync::atomic::AtomicBool,
    faults: AtomicUsize,
    /// The run's observability collector. Defaults to the shared
    /// disabled instance, whose recording methods are one branch — the
    /// guard stays on its fast path unless a caller opts in via
    /// [`with_metrics`](BudgetGuard::with_metrics).
    metrics: Arc<ExploreMetrics>,
}

impl BudgetGuard {
    /// Starts the clock on `budget`, watching `cancel` for external
    /// cancellation.
    #[must_use]
    pub fn new(budget: &Budget, cancel: CancelToken) -> Self {
        BudgetGuard::with_metrics(budget, cancel, ExploreMetrics::disabled())
    }

    /// [`new`](BudgetGuard::new), with an observability collector: every
    /// phase run under this guard records counters, phase spans and
    /// trace events into `metrics` (see the [`metrics`](crate::metrics)
    /// module). Pass [`ExploreMetrics::collector`] to record,
    /// [`ExploreMetrics::disabled`] to opt out.
    #[must_use]
    pub fn with_metrics(
        budget: &Budget,
        cancel: CancelToken,
        metrics: Arc<ExploreMetrics>,
    ) -> Self {
        BudgetGuard {
            start: Instant::now(),
            deadline: budget.deadline,
            max_states: budget.max_states,
            max_interleavings: budget.max_interleavings,
            cancel,
            inert: false,
            states: AtomicUsize::new(0),
            checks: AtomicUsize::new(0),
            next_deadline_check: AtomicUsize::new(0),
            last_check_n: AtomicUsize::new(0),
            last_check_nanos: std::sync::atomic::AtomicU64::new(0),
            tripped: AtomicU8::new(0),
            soft_interleavings: std::sync::atomic::AtomicBool::new(false),
            soft_actions: std::sync::atomic::AtomicBool::new(false),
            faults: AtomicUsize::new(0),
            metrics,
        }
    }

    /// The observability collector riding on this guard (the shared
    /// disabled instance unless the guard was built with
    /// [`with_metrics`](BudgetGuard::with_metrics)). Explorer phases
    /// use this to record without any signature changes.
    #[must_use]
    pub fn metrics(&self) -> &ExploreMetrics {
        &self.metrics
    }

    /// A guard that never trips and skips all bookkeeping — what the
    /// non-governed entry points use, so they cost nothing extra.
    #[must_use]
    pub fn unlimited() -> Self {
        let mut g = BudgetGuard::new(&Budget::unlimited(), CancelToken::new());
        g.inert = true;
        g
    }

    /// The interleaving cap this guard enforces (used by the
    /// execution-enumerating entry points).
    #[must_use]
    pub fn max_interleavings(&self) -> usize {
        self.max_interleavings
    }

    /// Records one newly explored state (called on each memo/interner
    /// miss; the count approximates the run's memory footprint).
    pub fn note_state(&self) {
        self.metrics.bump(Counter::StatesVisited);
        if self.inert {
            return;
        }
        self.states.fetch_add(1, Ordering::Relaxed);
    }

    /// [`note_state`](BudgetGuard::note_state) with the metrics mirror
    /// batched into `tally` instead of bumped on the collector — the
    /// form the sequential hot loops use (one atomic per state instead
    /// of two plus a thread-local lookup).
    pub fn note_state_tallied(&self, tally: &CounterTally<'_>) {
        tally.bump(Counter::StatesVisited);
        if self.inert {
            return;
        }
        self.states.fetch_add(1, Ordering::Relaxed);
    }

    /// Should exploration stop? Checked cooperatively at every state
    /// visit: consults (in order) the recorded trip, the cancel token
    /// (every call — it is one atomic load, so an external cancellation
    /// stops the very next visit), the state cap, and — on an adaptive
    /// stride of at most [`MAX_DEADLINE_STRIDE`] calls — the wall
    /// clock. The first bound to trip wins and is remembered.
    #[must_use]
    pub fn should_stop(&self) -> bool {
        if self.inert {
            return false;
        }
        if self.tripped.load(Ordering::Relaxed) != 0 {
            return true;
        }
        if self.cancel.is_cancelled() {
            self.trip(TRIP_CANCELLED);
            return true;
        }
        if let Some(cap) = self.max_states {
            if self.states.load(Ordering::Relaxed) > cap {
                self.trip(TRIP_STATES);
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            let n = self.checks.fetch_add(1, Ordering::Relaxed);
            if n >= self.next_deadline_check.load(Ordering::Relaxed) {
                let elapsed = self.start.elapsed();
                if elapsed >= deadline {
                    self.trip(TRIP_WALL_CLOCK);
                    return true;
                }
                self.schedule_next_deadline_check(n, elapsed, deadline);
            }
        }
        false
    }

    /// Schedules the next wall-clock sample (see
    /// [`MAX_DEADLINE_STRIDE`]): measure the per-visit cost over the
    /// window since the previous sample, then aim the next sample
    /// halfway through the remaining time at that rate. The stride
    /// therefore shrinks geometrically as the deadline nears — with
    /// expensive visits it collapses to 1, bounding overshoot to about
    /// one visit's worth of work — while cheap visits plateau at the
    /// maximum stride. The very first sample uses a stride of 1, so the
    /// first real window is measured before any stride is trusted.
    /// Cross-worker races on the bookkeeping only perturb the stride,
    /// never the deadline itself.
    fn schedule_next_deadline_check(&self, n: usize, elapsed: Duration, deadline: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let last_n = self.last_check_n.swap(n, Ordering::Relaxed);
        let last_nanos = self.last_check_nanos.swap(nanos, Ordering::Relaxed);
        let window_visits = n.saturating_sub(last_n) as u64;
        let window_nanos = nanos.saturating_sub(last_nanos);
        let stride = if window_visits == 0 {
            // First sample: no window measured yet, stay conservative.
            1
        } else if window_nanos == 0 {
            // Visits too fast for the clock to register: sampling every
            // visit would be pure overhead.
            MAX_DEADLINE_STRIDE
        } else {
            let per_visit = (window_nanos / window_visits).max(1);
            let remaining =
                u64::try_from(deadline.saturating_sub(elapsed).as_nanos()).unwrap_or(u64::MAX);
            usize::try_from(remaining / (2 * per_visit))
                .unwrap_or(MAX_DEADLINE_STRIDE)
                .clamp(1, MAX_DEADLINE_STRIDE)
        };
        self.next_deadline_check
            .store(n.saturating_add(stride), Ordering::Relaxed);
    }

    /// Records that the interleaving-enumeration cap was hit (a *soft*
    /// truncation: the enumeration stops itself; other phases proceed).
    pub fn trip_interleaving_cap(&self) {
        self.metrics.bump(Counter::TripInterleavings);
        self.metrics.event("trip:interleaving_cap", 0);
        if !self.inert {
            self.soft_interleavings.store(true, Ordering::Release);
        }
    }

    /// Records that the per-execution action fuel cut a behaviour set
    /// (a *soft* truncation: the exact race and census phases proceed).
    pub fn trip_action_bound(&self) {
        self.metrics.bump(Counter::TripActions);
        self.metrics.event("trip:action_bound", 0);
        if !self.inert {
            self.soft_actions.store(true, Ordering::Release);
        }
    }

    /// Records that a degraded (post-panic) result is still partial.
    pub fn trip_worker_panic(&self) {
        self.trip(TRIP_WORKER_PANIC);
    }

    fn trip(&self, code: u8) {
        // Counted per trip *signal* (not per winning reason), so the
        // stats show every cause that fired, first-winner or not.
        let (counter, label) = match code {
            TRIP_WALL_CLOCK => (Counter::TripWallClock, "trip:wall_clock"),
            TRIP_STATES => (Counter::TripStates, "trip:state_cap"),
            TRIP_CANCELLED => (Counter::TripCancelled, "trip:cancelled"),
            _ => (Counter::TripWorkerPanic, "trip:worker_panic"),
        };
        self.metrics.bump(counter);
        self.metrics.event(label, u64::from(code));
        if self.inert {
            return;
        }
        // First reason wins; later phases observe the same verdict.
        let _ = self
            .tripped
            .compare_exchange(0, code, Ordering::AcqRel, Ordering::Relaxed);
    }

    /// Why the run is not exhaustive, if it is not: the first *hard*
    /// trip (which also stopped exploration), else a soft truncation
    /// (interleaving cap before action fuel).
    #[must_use]
    pub fn trip_reason(&self) -> Option<TruncationReason> {
        match self.tripped.load(Ordering::Acquire) {
            TRIP_WALL_CLOCK => {
                return Some(TruncationReason::BudgetExceeded(BudgetBound::WallClock))
            }
            TRIP_STATES => return Some(TruncationReason::BudgetExceeded(BudgetBound::States)),
            TRIP_CANCELLED => return Some(TruncationReason::Cancelled),
            TRIP_WORKER_PANIC => return Some(TruncationReason::WorkerPanic),
            _ => {}
        }
        if self.soft_interleavings.load(Ordering::Acquire) {
            return Some(TruncationReason::BudgetExceeded(BudgetBound::Interleavings));
        }
        if self.soft_actions.load(Ordering::Acquire) {
            return Some(TruncationReason::BudgetExceeded(BudgetBound::Actions));
        }
        None
    }

    /// Records one recovered worker fault (a quarantined panic whose
    /// subproblem was re-run on the sequential reference engine).
    pub fn record_fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Recovered worker faults so far.
    #[must_use]
    pub fn faults(&self) -> usize {
        self.faults.load(Ordering::Relaxed)
    }

    /// Distinct states explored so far (all phases).
    #[must_use]
    pub fn states(&self) -> usize {
        self.states.load(Ordering::Relaxed)
    }

    /// Time since the guard was created.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Default for BudgetGuard {
    fn default() -> Self {
        BudgetGuard::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_degenerate_bounds() {
        assert!(Budget::unlimited().validate().is_ok());
        assert!(Budget::unlimited()
            .timeout(Duration::from_millis(1))
            .max_states(1)
            .validate()
            .is_ok());
        let zero_deadline = Budget::unlimited().timeout(Duration::ZERO);
        assert!(zero_deadline.validate().unwrap_err().contains("timeout"));
        let zero_states = Budget::unlimited().max_states(0);
        assert!(zero_states.validate().unwrap_err().contains("max-states"));
        let zero_interleavings = Budget::unlimited().max_interleavings(0);
        assert!(zero_interleavings
            .validate()
            .unwrap_err()
            .contains("max-interleavings"));
    }

    #[test]
    fn unlimited_guard_never_stops() {
        let g = BudgetGuard::unlimited();
        for _ in 0..10_000 {
            g.note_state();
            assert!(!g.should_stop());
        }
        assert_eq!(g.trip_reason(), None);
    }

    #[test]
    fn state_cap_trips_with_reason() {
        let g = BudgetGuard::new(&Budget::unlimited().max_states(10), CancelToken::new());
        for _ in 0..=10 {
            assert!(!g.should_stop());
            g.note_state();
        }
        assert!(g.should_stop());
        assert_eq!(
            g.trip_reason(),
            Some(TruncationReason::BudgetExceeded(BudgetBound::States))
        );
        // monotonic: stays tripped, reason stable
        assert!(g.should_stop());
        assert_eq!(
            g.trip_reason(),
            Some(TruncationReason::BudgetExceeded(BudgetBound::States))
        );
    }

    #[test]
    fn deadline_trips() {
        let g = BudgetGuard::new(
            &Budget::unlimited().timeout(Duration::ZERO),
            CancelToken::new(),
        );
        // The stride means the very first call already reads the clock.
        assert!(g.should_stop());
        assert_eq!(
            g.trip_reason(),
            Some(TruncationReason::BudgetExceeded(BudgetBound::WallClock))
        );
    }

    #[test]
    fn deadline_overshoot_is_bounded_for_expensive_visits() {
        // Visits cost ~1 ms each. A fixed 64-call stride would sample
        // the clock next at visit 64 and overrun this 30 ms deadline by
        // ~35 ms; the adaptive stride must trip within a few visits of
        // the deadline instead.
        let deadline = Duration::from_millis(30);
        let g = BudgetGuard::new(&Budget::unlimited().timeout(deadline), CancelToken::new());
        let start = Instant::now();
        while !g.should_stop() {
            g.note_state();
            std::thread::sleep(Duration::from_millis(1));
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "guard never tripped"
            );
        }
        assert_eq!(
            g.trip_reason(),
            Some(TruncationReason::BudgetExceeded(BudgetBound::WallClock))
        );
        let overshoot = start.elapsed().saturating_sub(deadline);
        assert!(
            overshoot < Duration::from_millis(15),
            "tripped {overshoot:?} past the deadline — expected the \
             adaptive stride to bound overshoot to about one visit"
        );
    }

    #[test]
    fn cancellation_stops_the_very_next_visit() {
        // The cancel token must be consulted on every call — never
        // stride-sampled — even while the deadline machinery is active.
        let token = CancelToken::new();
        let g = BudgetGuard::new(
            &Budget::unlimited().timeout(Duration::from_secs(3600)),
            token.clone(),
        );
        for _ in 0..100 {
            assert!(!g.should_stop());
            g.note_state();
        }
        token.cancel();
        assert!(g.should_stop());
        assert_eq!(g.trip_reason(), Some(TruncationReason::Cancelled));
    }

    #[test]
    fn cancellation_wins_over_later_bounds() {
        let token = CancelToken::new();
        let g = BudgetGuard::new(&Budget::unlimited().max_states(0), token.clone());
        token.cancel();
        assert!(g.should_stop());
        assert_eq!(g.trip_reason(), Some(TruncationReason::Cancelled));
    }

    #[test]
    fn first_trip_wins() {
        let g = BudgetGuard::new(&Budget::unlimited(), CancelToken::new());
        g.trip_interleaving_cap();
        g.trip_action_bound();
        assert_eq!(
            g.trip_reason(),
            Some(TruncationReason::BudgetExceeded(BudgetBound::Interleavings))
        );
    }

    #[test]
    fn fault_accounting() {
        let g = BudgetGuard::unlimited();
        assert_eq!(g.faults(), 0);
        g.record_fault();
        g.record_fault();
        assert_eq!(g.faults(), 2);
    }

    #[test]
    fn displays() {
        assert_eq!(Completeness::Complete.to_string(), "complete");
        assert_eq!(
            Completeness::Truncated {
                reason: TruncationReason::BudgetExceeded(BudgetBound::WallClock)
            }
            .to_string(),
            "truncated: budget exceeded (wall-clock deadline)"
        );
        assert_eq!(TruncationReason::Cancelled.to_string(), "cancelled");
        assert_eq!(
            EngineFault {
                message: "node evaluated twice".into()
            }
            .to_string(),
            "parallel engine fault: node evaluated twice"
        );
    }
}
