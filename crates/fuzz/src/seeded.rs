//! Hand-written known-unsafe seed cases.
//!
//! Each case is a (program, rule, model) triple for which the
//! transformation is *flagged* by `classify_transformation_under` and
//! genuinely diverges under the model — the positive controls of the
//! fuzzing run.  Every `drfcheck fuzz` invocation replays them first:
//! a seeded case that is no longer detected means the oracle (or a
//! machine) lost the divergence, and the run fails loudly rather than
//! soaking quietly with a blind oracle.

use transafety_lang::{parse_program, Program};
use transafety_syntactic::RuleName;
use transafety_traces::MemoryModelKind;

use crate::oracle::{check_pair, OracleConfig};
use crate::pipeline::Pipeline;
use crate::shrink::{minimise, statement_count, Minimised};
use crate::witness::pipeline_for_rules;

/// One seeded known-unsafe case.
#[derive(Debug, Clone, Copy)]
pub struct SeededCase {
    /// Stable name (used for witness files and reporting).
    pub name: &'static str,
    /// The original program source.
    pub source: &'static str,
    /// The rule whose application must diverge.
    pub rule: RuleName,
    /// The model the divergence shows up under.
    pub model: MemoryModelKind,
}

/// The built-in known-unsafe corpus.
///
/// Register moves are hoisted to the front of each thread so the
/// Fig. 10/11 side conditions (the intervening segment must not touch
/// the matched registers) are met on the desugared AST.
///
/// * `ewbw_tso`: overwritten-write elimination.  The buffered `x := r0`
///   forces `x` to be visible no later than `y` under TSO's FIFO store
///   buffer; eliminating it lets the reader observe `y == 1, x == 0`
///   and take the guarded print.  Outside the §8 TSO fragment, flagged
///   as `EliminationKind::OverwrittenWrite`.
/// * `rrw_tso`: load→store reordering (R-RW).  Both TSO and SC forbid
///   the load-buffering outcome `r1 == r3 == 1` of the original;
///   hoisting the store above the load makes it reachable.  Flagged
///   conservatively (`EliminationThenReordering` is never
///   `safe_under_model` on relaxed models).
#[must_use]
pub fn known_unsafe_cases() -> Vec<SeededCase> {
    vec![
        SeededCase {
            name: "ewbw_tso",
            source: "r0 := 1; r1 := 1; r2 := 2; x := r0; y := r1; x := r2; \
                     || r3 := y; r4 := x; if (r4 == 0) print r3;",
            rule: RuleName::EWbw,
            model: MemoryModelKind::Tso,
        },
        SeededCase {
            name: "rrw_tso",
            source: "r0 := 1; r1 := x; y := r0; print r1; \
                     || r2 := 1; r3 := y; x := r2; print r3;",
            rule: RuleName::RRw,
            model: MemoryModelKind::Tso,
        },
    ]
}

/// The result of replaying one seeded case.
#[derive(Debug)]
pub struct SeededResult {
    /// The case.
    pub case: SeededCase,
    /// `true` if the oracle saw the divergence.
    pub detected: bool,
    /// The minimised witness (only when detected).
    pub minimised: Option<Minimised>,
}

impl SeededResult {
    /// Whether the minimised witness meets the acceptance bound
    /// (≤ 6 statements, ≤ 2 passes).
    #[must_use]
    pub fn within_bounds(&self) -> bool {
        self.minimised
            .as_ref()
            .is_some_and(|m| statement_count(&m.program) <= 6 && m.pipeline.len() <= 2)
    }
}

/// Resolve a seeded case to its (program, pipeline) pair.
///
/// # Panics
/// If the built-in source no longer parses or the rule no longer
/// applies (both would be repo bugs).
#[must_use]
pub fn resolve(case: &SeededCase) -> (Program, Pipeline) {
    let program = parse_program(case.source)
        .unwrap_or_else(|e| panic!("seeded case {}: {e}", case.name))
        .program;
    let pipeline = pipeline_for_rules(&program, &[case.rule])
        .unwrap_or_else(|| panic!("seeded case {}: {} does not apply", case.name, case.rule));
    (program, pipeline)
}

/// Replay one seeded case: run the oracle, demand a divergence, and
/// minimise it with the case's rule pinned — the shrunk witness must
/// still diverge *via the named transformation*, not via some other
/// divergence a shrink step leaves behind.  `shrink_attempts` bounds
/// the minimiser's oracle re-runs.
#[must_use]
pub fn replay(case: &SeededCase, config: &OracleConfig, shrink_attempts: usize) -> SeededResult {
    let (program, pipeline) = resolve(case);
    let report = check_pair(&program, &pipeline, config);
    if !report.outcome.is_divergence() {
        return SeededResult {
            case: *case,
            detected: false,
            minimised: None,
        };
    }
    let rule = case.rule;
    let minimised = minimise(
        &program,
        &pipeline,
        config,
        |r| r.outcome.is_divergence() && r.applied.iter().any(|p| p.rule == rule),
        shrink_attempts,
    );
    SeededResult {
        case: *case,
        detected: true,
        minimised: Some(minimised),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Outcome;

    #[test]
    fn every_seeded_case_is_detected_and_shrinks_within_bounds() {
        for case in known_unsafe_cases() {
            let config = OracleConfig::for_model(case.model);
            let result = replay(&case, &config, 2_000);
            assert!(result.detected, "seeded case {} not detected", case.name);
            assert!(
                result.within_bounds(),
                "seeded case {} minimised out of bounds: {:?}",
                case.name,
                result
                    .minimised
                    .map(|m| (statement_count(&m.program), m.pipeline.len()))
            );
        }
    }

    #[test]
    fn seeded_divergences_are_expected_not_violations() {
        // Both seeds have racy originals and flagged transformations:
        // the oracle must class them ExpectedDivergence, not Violation.
        for case in known_unsafe_cases() {
            let (program, pipeline) = resolve(&case);
            let config = OracleConfig::for_model(case.model);
            let report = check_pair(&program, &pipeline, &config);
            match report.outcome {
                Outcome::ExpectedDivergence(ref d) => {
                    assert!(!d.classifier_safe, "{}: classifier must flag it", case.name);
                }
                ref other => panic!("{}: {other:?}", case.name),
            }
        }
    }
}
