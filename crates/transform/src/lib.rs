//! The semantic program transformations of §4–§5 of the paper:
//! **eliminations** and **reorderings** of memory-action traces, with
//! complete bounded witness searches, the Lemma 1 unelimination
//! construction, and the out-of-thin-air origin analysis.
//!
//! The paper proves that any composition of these transformations is
//! sound for data-race-free programs and cannot manufacture
//! out-of-thin-air values. This crate makes every definition executable:
//!
//! * [`eliminable_kinds`] — Definition 1 (the eight kinds of redundant
//!   actions on wildcard traces);
//! * [`find_elimination`] / [`is_elimination_of`] — the §4 semantic
//!   elimination between tracesets, as a witness search;
//! * [`reorderable`] / [`reorder_matrix`] — the §4 reorderability
//!   relation and its summary table, including roach-motel asymmetry;
//! * [`ReorderingFn`], [`de_permute_prefix`], [`find_reordering`] /
//!   [`is_reordering_of`] — the §4 semantic reordering;
//! * [`find_elim_reordering`] — the composite transformation that
//!   Lemma 5 relates to syntactic reordering;
//! * [`find_unelimination`] / [`find_unordering`] — the §5 untransformation
//!   constructions (Lemma 1 / the unordering merge);
//! * origin analysis for the out-of-thin-air guarantee lives on
//!   [`Traceset::has_origin_for`](transafety_traces::Traceset::has_origin_for)
//!   and is composed into verdicts by `transafety-checker`.
//!
//! # Example
//!
//! The Fig. 1 elimination: `r1:=x; r2:=x; print r2` can drop the second
//! read.
//!
//! ```
//! use transafety_traces::{Action, Domain, Loc, ThreadId, Trace, Traceset, Value};
//! use transafety_transform::{find_elimination, EliminationOptions};
//!
//! let x = Loc::normal(0);
//! let d = Domain::zero_to(1);
//! let mut original = Traceset::new();
//! for v1 in d.iter() {
//!     for v2 in d.iter() {
//!         original.insert(Trace::from_actions([
//!             Action::start(ThreadId::new(0)),
//!             Action::read(x, v1),
//!             Action::read(x, v2),
//!             Action::external(v2),
//!         ]))?;
//!     }
//! }
//! // transformed thread: r1:=x; r2:=r1; print r2  — one shared read
//! let transformed = Trace::from_actions([
//!     Action::start(ThreadId::new(0)),
//!     Action::read(x, Value::new(1)),
//!     Action::external(Value::new(1)),
//! ]);
//! let witness = find_elimination(&transformed, &original, &d,
//!     &EliminationOptions::default()).expect("redundant read after read");
//! assert!(witness.check(&transformed));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod combined;
mod elimination;
mod kinds;
mod reorderable;
mod reordering;
mod unelim;
mod unorder;

pub use combined::{
    find_elim_reordering, is_elim_reordering_of, EliminationOracle, NotATransformation,
};
pub use elimination::{
    find_elimination, is_elimination_of, witness_against_wild, EliminationOptions,
    EliminationWitness, NotAnElimination,
};
pub use kinds::{eliminable_kinds, is_eliminable, is_properly_eliminable, EliminationKind};
pub use reorderable::{
    render_reorder_matrix, reorder_matrix, reorderable, MatrixEntry, ReorderClass,
};
pub use reordering::{
    de_permute, de_permute_prefix, de_permutes_with, find_reordering, find_reordering_with,
    is_reordering_of, NotAPermutation, NotAReordering, ReorderingFn,
};
pub use unelim::{find_unelimination, UneliminationWitness};
pub use unorder::{find_unordering, UnorderingWitness};
