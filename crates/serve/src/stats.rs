//! Service-level observability: admission, cache, degradation and
//! latency counters for one serve session.
//!
//! The per-request exploration metrics stay with the PR 5 layer
//! ([`transafety_interleaving::ExploreMetrics`]); this module counts
//! the things only the *service* can see — shed requests, cache
//! behaviour, retries, injected faults, per-request latency — and
//! serialises them under the same stable schema id as the analysis
//! stats (`drfcheck-stats-v1`), as a dedicated `serve` section:
//!
//! ```json
//! {"schema":"drfcheck-stats-v1","section":"serve","serve":{...}}
//! ```
//!
//! Counters are accumulated under one mutex: requests are heavyweight
//! (a full exploration each), so per-request locking is noise — the
//! striped-counter machinery of the exploration layer would be
//! over-engineering here.

use std::time::Duration;

/// Counters and latency samples for one serve session. Obtained from
/// [`Server::run`](crate::Server::run) as part of the summary, or
/// snapshotted live.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Request lines received (including unparseable ones).
    pub requests: u64,
    /// Lines that failed to parse or validate (each got an `error`
    /// response).
    pub parse_errors: u64,
    /// `ok` responses (fresh or cached).
    pub responses_ok: u64,
    /// `error` responses for requests that were admitted but could not
    /// be analysed (double panic, rejected options).
    pub responses_error: u64,
    /// `overloaded` responses: requests shed by admission control.
    pub responses_overloaded: u64,
    /// `cancelled` responses: requests drained unprocessed at shutdown.
    pub responses_cancelled: u64,
    /// Verified cache hits.
    pub cache_hits: u64,
    /// Cache misses (absent entry, or a verified content mismatch).
    pub cache_misses: u64,
    /// Entries published to the cache.
    pub cache_writes: u64,
    /// Corrupt entries quarantined (each also counts a miss).
    pub cache_quarantined: u64,
    /// Sequential retries after a quarantined worker panic.
    pub retries: u64,
    /// Worker panics caught at the request boundary (injected or real).
    pub worker_panics: u64,
    /// Faults injected by the active [`FaultPlan`](crate::FaultPlan).
    pub faults_injected: u64,
    /// Requests whose budget tripped (responses carried
    /// `verdict:"unknown"` with a truncation reason).
    pub budget_trips: u64,
    /// Per-request wall latencies in microseconds (admission to
    /// response write), one sample per `ok`/`error` response.
    pub latencies_micros: Vec<u64>,
}

impl ServeStats {
    /// Records one completed request's latency.
    pub fn record_latency(&mut self, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.latencies_micros.push(micros);
    }

    /// Number of latency samples.
    #[must_use]
    pub fn latency_count(&self) -> u64 {
        self.latencies_micros.len() as u64
    }

    /// Sum of all latency samples, in microseconds.
    #[must_use]
    pub fn latency_total_micros(&self) -> u64 {
        self.latencies_micros.iter().copied().sum()
    }

    /// The `q`-quantile latency (0.0 ≤ q ≤ 1.0) by nearest-rank over
    /// the recorded samples; `0` with no samples.
    #[must_use]
    pub fn latency_quantile_micros(&self, q: f64) -> u64 {
        if self.latencies_micros.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_micros.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[rank]
    }

    /// The maximum latency sample, in microseconds.
    #[must_use]
    pub fn latency_max_micros(&self) -> u64 {
        self.latencies_micros.iter().copied().max().unwrap_or(0)
    }

    /// Serialises the section to one line of schema-stable JSON. Key
    /// order is fixed; all values are non-negative integers, so the
    /// golden-schema tests can parse it the same way they parse the
    /// exploration stats line.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\"schema\":\"drfcheck-stats-v1\",\"section\":\"serve\",\"serve\":{");
        let mut first = true;
        for (key, value) in [
            ("requests", self.requests),
            ("parse_errors", self.parse_errors),
            ("responses_ok", self.responses_ok),
            ("responses_error", self.responses_error),
            ("responses_overloaded", self.responses_overloaded),
            ("responses_cancelled", self.responses_cancelled),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("cache_writes", self.cache_writes),
            ("cache_quarantined", self.cache_quarantined),
            ("retries", self.retries),
            ("worker_panics", self.worker_panics),
            ("faults_injected", self.faults_injected),
            ("budget_trips", self.budget_trips),
            ("latency_count", self.latency_count()),
            ("latency_total_micros", self.latency_total_micros()),
            ("latency_p50_micros", self.latency_quantile_micros(0.50)),
            ("latency_p99_micros", self.latency_quantile_micros(0.99)),
            ("latency_max_micros", self.latency_max_micros()),
        ] {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!("\"{key}\":{value}"));
        }
        s.push_str("}}");
        s
    }

    /// Renders a human-readable multi-line summary (what `--stats`
    /// prints on stderr after a session).
    #[must_use]
    pub fn to_human(&self) -> String {
        format!(
            "--- serve stats ---\n\
             requests: {} received, {} parse errors\n\
             responses: {} ok, {} error, {} overloaded (shed), {} cancelled\n\
             cache: {} hits, {} misses, {} writes, {} quarantined\n\
             degradation: {} worker panics, {} retries, {} injected faults, {} budget trips\n\
             latency (µs): p50 {}, p99 {}, max {} over {} requests",
            self.requests,
            self.parse_errors,
            self.responses_ok,
            self.responses_error,
            self.responses_overloaded,
            self.responses_cancelled,
            self.cache_hits,
            self.cache_misses,
            self.cache_writes,
            self.cache_quarantined,
            self.worker_panics,
            self.retries,
            self.faults_injected,
            self.budget_trips,
            self.latency_quantile_micros(0.50),
            self.latency_quantile_micros(0.99),
            self.latency_max_micros(),
            self.latency_count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_nearest_rank() {
        let mut s = ServeStats::default();
        for v in [5u64, 1, 3, 2, 4] {
            s.latencies_micros.push(v);
        }
        assert_eq!(s.latency_quantile_micros(0.5), 3);
        assert_eq!(s.latency_quantile_micros(0.99), 5);
        assert_eq!(s.latency_quantile_micros(1.0), 5);
        assert_eq!(s.latency_max_micros(), 5);
        assert_eq!(s.latency_total_micros(), 15);
        assert_eq!(ServeStats::default().latency_quantile_micros(0.99), 0);
    }

    #[test]
    fn json_has_the_stable_preamble_and_no_negatives() {
        let mut s = ServeStats {
            requests: 3,
            ..ServeStats::default()
        };
        s.record_latency(Duration::from_micros(250));
        let json = s.to_json();
        assert!(
            json.starts_with("{\"schema\":\"drfcheck-stats-v1\",\"section\":\"serve\",\"serve\":{")
        );
        assert!(json.contains("\"requests\":3"));
        assert!(json.contains("\"latency_count\":1"));
        assert!(!json.contains(":-"), "no negative counters: {json}");
    }
}
