//! The simple concurrent imperative language of §6 of the paper:
//! abstract syntax (Fig. 6), the labellised small-step trace semantics
//! (Fig. 7–8), traceset extraction `[P]`, a concrete-syntax parser, and
//! a direct state-space explorer for behaviours and data races.
//!
//! # Example
//!
//! Parse and analyse the Fig. 2 original program:
//!
//! ```
//! use transafety_lang::{parse_program, ExploreOptions, ProgramExplorer};
//! use transafety_traces::Value;
//!
//! let src = "r2 := x; y := r2; || r1 := y; x := 1; print r1;";
//! let parsed = parse_program(src)?;
//! let explorer = ProgramExplorer::new(&parsed.program);
//! let b = explorer.behaviours(&ExploreOptions::default());
//! assert!(b.complete);
//! assert!(!b.value.contains(&vec![Value::new(1)]), "the original cannot print 1");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod explore;
mod model;
mod parser;
mod semantics;

pub use ast::{Cond, Operand, Program, Reg, Stmt};
pub use explore::{program_loops_are_awaits, Bounded, CfgMeta, ExploreOptions, ProgramExplorer};
pub use model::{
    MemoryModel, ModelExplorer, ModelMove, ModelRaceWitness, MoveLabel, Reduced, ReductionGoal,
    ScModel, ScheduleStep,
};
pub use parser::{
    parse_program, parse_program_with_symbols, ParseProgramError, SourceProgram, SymbolTable,
};
pub use semantics::{extract_traceset, ExtractOptions, Extraction, Step, ThreadConfig};
