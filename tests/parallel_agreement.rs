//! Determinism of the parallel exploration engine: for every program in
//! the built-in litmus corpus and every `.tsl` program shipped in
//! `programs/`, the work-stealing drivers (`jobs >= 2`) must agree with
//! the sequential reference driver (`jobs = 1`) on behaviours, race
//! verdicts *and* race witnesses — bit-identically, since the parallel
//! engine evaluates the same dynamic program over the same deduplicated
//! state graph and reconstructs witnesses canonically.

use transafety::checker::Analysis;
use transafety::lang::{parse_program, Program, ProgramExplorer};
use transafety::litmus::corpus;

fn corpus_programs() -> Vec<(String, Program)> {
    let mut out: Vec<(String, Program)> = corpus()
        .iter()
        .map(|l| (l.name.to_string(), l.parse().program))
        .collect();
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/programs");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("programs/ directory exists")
        .map(|e| e.expect("readable directory entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "tsl"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "programs/*.tsl corpus is missing");
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("readable program file");
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        out.push((
            name,
            parse_program(&src).expect("valid .tsl program").program,
        ));
    }
    out
}

#[test]
fn behaviours_agree_across_worker_counts() {
    for (name, program) in corpus_programs() {
        let ex = ProgramExplorer::new(&program);
        let opts = Analysis::new();
        let reference = ex.behaviours(&opts.explore);
        for jobs in [2, 4, 8] {
            let parallel = ex.behaviours_par(&opts.explore, jobs);
            assert_eq!(
                parallel, reference,
                "{name}: behaviours differ between jobs=1 and jobs={jobs}"
            );
        }
    }
}

#[test]
fn race_verdicts_and_witnesses_agree_across_worker_counts() {
    for (name, program) in corpus_programs() {
        let ex = ProgramExplorer::new(&program);
        let opts = Analysis::new();
        let reference = ex.race_witness(&opts.explore);
        for jobs in [2, 4, 8] {
            let parallel = ex.race_witness_par(&opts.explore, jobs);
            assert_eq!(
                parallel.is_some(),
                reference.is_some(),
                "{name}: race verdict differs between jobs=1 and jobs={jobs}"
            );
            assert_eq!(
                parallel, reference,
                "{name}: race witness differs between jobs=1 and jobs={jobs}"
            );
        }
    }
}

#[test]
fn guarantee_verdicts_agree_across_worker_counts() {
    use transafety::checker::drf_guarantee;
    use transafety::syntactic::all_rewrites;

    // The theorem-level check composes behaviours + race searches; run
    // it over every safe rewrite of a few corpus programs and demand the
    // same verdict at every worker count.
    for name in [
        "fig1-original",
        "redundant-load-pair",
        "store-forward",
        "sb",
        "mp-volatile",
    ] {
        let program = transafety::litmus::by_name(name)
            .expect("corpus name")
            .parse()
            .program;
        for rw in all_rewrites(&program) {
            let reference = drf_guarantee(&rw.result, &program, &Analysis::new());
            for jobs in [2, 4] {
                let parallel = drf_guarantee(&rw.result, &program, &Analysis::new().jobs(jobs));
                assert_eq!(
                    parallel, reference,
                    "{name}/{rw}: guarantee verdict differs at jobs={jobs}"
                );
            }
        }
    }
}

#[test]
fn analysis_reports_agree_across_worker_counts() {
    for (name, program) in corpus_programs() {
        let reference = Analysis::new().run(&program);
        let parallel = Analysis::new().jobs(4).run(&program);
        assert_eq!(
            reference.behaviours, parallel.behaviours,
            "{name}: behaviours"
        );
        assert_eq!(reference.race, parallel.race, "{name}: race witness");
        assert_eq!(
            reference.reachable_states, parallel.reachable_states,
            "{name}: state census"
        );
        assert_eq!(
            reference.completeness, parallel.completeness,
            "{name}: completeness"
        );
        assert_eq!(reference.verdict, parallel.verdict, "{name}: verdict");
    }
}

#[test]
fn completeness_and_verdict_agree_under_a_state_budget() {
    use transafety::checker::Verdict;

    // A state cap trips deterministically at the same explored-state
    // count whatever the worker count, so the *shape* of the outcome
    // (complete vs truncated, and the three-valued verdict modulo the
    // sequential/parallel tie on discovery order) must agree. The
    // soundness half is exact: a truncated run never upgrades to a
    // proof.
    for (name, program) in corpus_programs() {
        let seq = Analysis::new().max_states(64).run(&program);
        let par = Analysis::new().max_states(64).jobs(4).run(&program);
        for (engine, report) in [("sequential", &seq), ("parallel", &par)] {
            assert!(
                report.completeness.is_complete() || report.verdict != Verdict::DrfProven,
                "{name}/{engine}: truncated run claimed a DRF proof"
            );
            if report.verdict == Verdict::DrfProven {
                assert!(report.race.is_none(), "{name}/{engine}: proven yet racy");
            }
        }
        // Racy-witness agreement: if both engines ran to completion the
        // full report (including verdict) must be bit-identical.
        if seq.completeness.is_complete() && par.completeness.is_complete() {
            assert_eq!(seq.verdict, par.verdict, "{name}: verdict under budget");
            assert_eq!(seq.race, par.race, "{name}: race under budget");
        }
    }
}
