//! Exploration observability: counters, phase spans and a post-mortem
//! trace ring — the instrumentation layer behind `drfcheck --stats`.
//!
//! Stateless model checkers are judged by their search statistics
//! (states visited, reduction ratios, interner behaviour), so every
//! governed entry point of the pipeline records into an
//! [`ExploreMetrics`] collector that rides on the run's
//! [`BudgetGuard`](crate::BudgetGuard). The layer is
//! **zero-cost when disabled**: the default guard carries the shared
//! disabled collector, whose recording methods are a single predicted
//! branch on a constant `false` — no atomics, no clock reads, no locks.
//!
//! When enabled (via
//! [`BudgetGuard::with_metrics`](crate::BudgetGuard::with_metrics)),
//! the collector provides:
//!
//! * **striped atomic counters** ([`Counter`]) — each worker thread
//!   lands on one of a small number of cache-line-aligned stripes, so
//!   parallel phases do not serialise on a single hot counter;
//! * **phase spans** ([`Phase`], [`ExploreMetrics::span`]) — wall-time
//!   accumulated per pipeline phase (graph build, behaviour
//!   evaluation, race search, census, parallel drain) through RAII
//!   guards, robust to early returns;
//! * **a ring-buffered event log** ([`TraceEvent`]) — the most recent
//!   [`RING_CAPACITY`] timestamped events (phase transitions, budget
//!   trips, pool drains) for post-mortem dumps via
//!   `drfcheck --trace-out`.
//!
//! A finished run is summarised as an [`ExploreStats`] snapshot — a
//! plain, comparable struct that the checker surfaces as
//! `AnalysisReport::stats` and that serialises to a stable JSON schema
//! ([`ExploreStats::to_json`], schema id [`STATS_SCHEMA`]).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::intern::InternStats;

/// Number of counter stripes. Each thread is pinned to one stripe, so
/// up to this many workers bump counters without cache-line contention;
/// beyond that, stripes are shared round-robin (still correct, merely
/// contended).
const STRIPES: usize = 8;

/// Capacity of the post-mortem event ring: once full, the oldest event
/// is dropped for each new one (the drop count is reported in
/// [`ExploreStats::events_dropped`]).
pub const RING_CAPACITY: usize = 1024;

/// Schema identifier emitted as the `"schema"` key of
/// [`ExploreStats::to_json`]; bump when the key set changes. (v2 added
/// the `await_collapsed`/`await_wakeups` counters of the await-aware
/// stutter reduction.)
pub const STATS_SCHEMA: &str = "drfcheck-stats-v2";

/// One observable quantity of an exploration run. The discriminant
/// indexes the counter stripes, so the enum is `#[repr(usize)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Search nodes expanded (mirrors `BudgetGuard::note_state`, plus
    /// the census worklist pops the guard does not see).
    StatesVisited,
    /// Distinct keys admitted to the run's dedup structures (memo
    /// tables, visited sets, sharded interners). On a run that explores
    /// its space exhaustively this equals [`Counter::StatesVisited`];
    /// truncated or early-exiting runs leave admitted-but-unexpanded
    /// frontier keys, so `visited <= interned` always holds.
    StatesInterned,
    /// Dedup hits: moves whose successor was already known.
    StatesDeduped,
    /// Enabled moves generated across all expansions.
    MovesGenerated,
    /// Expansions where the partial-order reduction selected a
    /// singleton ample set.
    PorAmpleHits,
    /// Expansions that enumerated the full enabled-move set (reduction
    /// off, or no invisible move available).
    PorFullExpansions,
    /// Probe sequences started in [`StateInterner`](crate::intern::StateInterner) tables.
    InternProbes,
    /// Probes that found the key already interned.
    InternHits,
    /// Occupied-slot steps taken past mismatching entries (open
    /// addressing displacement; the quality signal for the hash).
    InternCollisions,
    /// Distinct keys held by the interners whose stats were harvested.
    InternKeys,
    /// Total probe-table slots behind those keys (with
    /// [`Counter::InternKeys`], gives the aggregate load factor).
    InternSlots,
    /// Work items executed by the parallel pool.
    PoolTasks,
    /// Tasks obtained by stealing from another worker's deque.
    PoolSteals,
    /// Times a worker parked on the idle gate.
    PoolParks,
    /// Idle-gate wake announcements (epoch bumps: pushes, stops,
    /// drains).
    PoolWakes,
    /// Wall-clock deadline trips observed.
    TripWallClock,
    /// Explored-state-cap trips observed.
    TripStates,
    /// External-cancellation trips observed.
    TripCancelled,
    /// Worker-panic trips observed.
    TripWorkerPanic,
    /// Interleaving-enumeration-cap (soft) trips observed.
    TripInterleavings,
    /// Per-execution action-fuel (soft) trips observed.
    TripActions,
    /// Expansions where a dynamically-invisible move was available but
    /// the cycle proviso forced a full expansion anyway (a loop edge
    /// the reduction must not ignore).
    DporProvisoBlocks,
    /// Ample expansions whose singleton was a store-buffer flush
    /// commuting with every other thread (TSO/PSO only; a subset of
    /// [`Counter::PorAmpleHits`]).
    DporFlushAmpleHits,
    /// Race-search steps that carried the last-access tracker through
    /// an ample move unchanged (the dynamic reduction's
    /// check-before-carry discipline).
    DporPrevCarries,
    /// Failed await-loop re-reads dropped by the behaviour-phase
    /// stutter collapse: the read left the spinning thread's
    /// configuration (and hence the whole state) unchanged, so the
    /// self-loop edge is pruned instead of burning a fuel layer.
    AwaitCollapsed,
    /// Reads on an await-watched location that *advanced* the spinning
    /// thread and were therefore kept — the value-change wakeups (plus
    /// one first-iteration read per spin entry, which materialises the
    /// guard register).
    AwaitWakeups,
}

/// Number of [`Counter`] variants (the stripe width).
const N_COUNTERS: usize = Counter::AwaitWakeups as usize + 1;

/// How one state expansion was reduced (or not). Recorded by
/// [`ExploreMetrics::record_expansion`] / [`CounterTally::expansion`]
/// and mapped onto the `por_*`/`dpor_*` counters:
///
/// * [`Full`](ExpansionKind::Full) → [`Counter::PorFullExpansions`];
/// * [`FullProviso`](ExpansionKind::FullProviso) →
///   [`Counter::PorFullExpansions`] **and**
///   [`Counter::DporProvisoBlocks`];
/// * [`Ample`](ExpansionKind::Ample) → [`Counter::PorAmpleHits`];
/// * [`AmpleFlush`](ExpansionKind::AmpleFlush) →
///   [`Counter::PorAmpleHits`] **and**
///   [`Counter::DporFlushAmpleHits`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpansionKind {
    /// The full enabled-move set was enumerated (reduction off, or no
    /// dynamically-invisible move available).
    Full,
    /// An invisible move existed, but the cycle proviso rejected it and
    /// forced a full expansion.
    FullProviso,
    /// The reduction selected a singleton ample set.
    Ample,
    /// The reduction selected a singleton ample set consisting of a
    /// commuting store-buffer flush (TSO/PSO).
    AmpleFlush,
}

impl ExpansionKind {
    /// Did this expansion reduce to a singleton ample set?
    #[must_use]
    pub fn is_ample(self) -> bool {
        matches!(self, ExpansionKind::Ample | ExpansionKind::AmpleFlush)
    }
}

/// A pipeline phase timed by [`ExploreMetrics::span`]. Phases may nest
/// (a parallel behaviour evaluation contains a graph build and a pool
/// drain), so the per-phase times are *inclusive* and do not sum to
/// the run's wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Parallel deduplicated expansion into an explicit state graph.
    GraphBuild,
    /// The behaviour-set dynamic program (sequential DFS or DAG form).
    BehaviourEval,
    /// The adjacent-conflict data-race search (DFS or parallel reach).
    RaceSearch,
    /// The reachable-state census.
    Census,
    /// Bottom-up Kahn evaluation draining the parallel pool.
    PoolDrain,
}

/// Number of [`Phase`] variants.
const N_PHASES: usize = Phase::PoolDrain as usize + 1;

impl Phase {
    /// Stable lower-snake name (used for event labels and JSON keys).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::GraphBuild => "graph_build",
            Phase::BehaviourEval => "behaviour_eval",
            Phase::RaceSearch => "race_search",
            Phase::Census => "census",
            Phase::PoolDrain => "pool_drain",
        }
    }
}

/// One timestamped entry of the post-mortem ring log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the collector was created.
    pub at_nanos: u64,
    /// What happened (a static label: `"phase_start:race_search"`,
    /// `"trip:wall_clock"`, …).
    pub label: &'static str,
    /// An event-specific payload (phase duration in nanoseconds, trip
    /// code, node count, …); `0` when the label alone is the message.
    pub value: u64,
}

/// The bounded event log: keeps the most recent [`RING_CAPACITY`]
/// events and counts the ones it had to drop.
#[derive(Debug, Default)]
struct RingLog {
    events: std::collections::VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingLog {
    fn push(&mut self, event: TraceEvent) {
        if self.events.len() == RING_CAPACITY {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// One cache-line-aligned stripe of counters (the alignment keeps
/// stripes from false-sharing a line even on 128-byte-fetch hardware).
#[derive(Debug)]
#[repr(align(128))]
struct Stripe {
    counters: [AtomicU64; N_COUNTERS],
}

impl Stripe {
    fn new() -> Self {
        Stripe {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Round-robin stripe assignment: each thread takes the next stripe
/// index on first use and keeps it for its lifetime.
fn stripe_index() -> usize {
    static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

/// The metrics collector for one analysis run.
///
/// Created enabled by [`ExploreMetrics::collector`] and attached to a
/// [`BudgetGuard`](crate::BudgetGuard) via
/// [`with_metrics`](crate::BudgetGuard::with_metrics); every other
/// guard shares the process-wide [`disabled`](ExploreMetrics::disabled)
/// instance, whose recording methods cost one branch.
#[derive(Debug)]
pub struct ExploreMetrics {
    enabled: bool,
    epoch: Instant,
    stripes: Vec<Stripe>,
    phase_nanos: [AtomicU64; N_PHASES],
    ring: Mutex<RingLog>,
}

impl ExploreMetrics {
    fn new(enabled: bool) -> Self {
        ExploreMetrics {
            enabled,
            epoch: Instant::now(),
            stripes: (0..STRIPES).map(|_| Stripe::new()).collect(),
            phase_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            ring: Mutex::new(RingLog::default()),
        }
    }

    /// A fresh, enabled collector for one run.
    #[must_use]
    pub fn collector() -> Arc<Self> {
        Arc::new(ExploreMetrics::new(true))
    }

    /// The process-wide disabled collector (all recording methods are
    /// no-ops): what every guard that was not given a collector uses.
    #[must_use]
    pub fn disabled() -> Arc<Self> {
        static DISABLED: OnceLock<Arc<ExploreMetrics>> = OnceLock::new();
        Arc::clone(DISABLED.get_or_init(|| Arc::new(ExploreMetrics::new(false))))
    }

    /// Is this collector recording?
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `n` to `counter` (no-op when disabled).
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if !self.enabled {
            return;
        }
        self.stripes[stripe_index()].counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to `counter` (no-op when disabled).
    #[inline]
    pub fn bump(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Records one state expansion: `moves` enabled moves were
    /// generated, reduced (or not) as described by `kind`.
    #[inline]
    pub fn record_expansion(&self, moves: usize, kind: ExpansionKind) {
        if !self.enabled {
            return;
        }
        self.add(Counter::MovesGenerated, moves as u64);
        if kind.is_ample() {
            self.bump(Counter::PorAmpleHits);
        } else {
            self.bump(Counter::PorFullExpansions);
        }
        match kind {
            ExpansionKind::FullProviso => self.bump(Counter::DporProvisoBlocks),
            ExpansionKind::AmpleFlush => self.bump(Counter::DporFlushAmpleHits),
            ExpansionKind::Full | ExpansionKind::Ample => {}
        }
    }

    /// Records one race-search step that carried the last-access
    /// tracker through an ample move unchanged.
    #[inline]
    pub fn record_prev_carry(&self) {
        self.bump(Counter::DporPrevCarries);
    }

    /// Harvests one interner's probe statistics into the aggregate
    /// counters (called once per interner, at the end of its phase).
    pub fn record_intern(&self, stats: InternStats) {
        if !self.enabled {
            return;
        }
        self.add(Counter::InternProbes, stats.probes);
        self.add(Counter::InternHits, stats.hits);
        self.add(Counter::InternCollisions, stats.collisions);
        self.add(Counter::InternKeys, stats.keys);
        self.add(Counter::InternSlots, stats.slots);
    }

    /// Records one parallel pool drain's scheduler statistics.
    pub fn record_pool(&self, tasks: u64, steals: u64, parks: u64, wakes: u64) {
        if !self.enabled {
            return;
        }
        self.add(Counter::PoolTasks, tasks);
        self.add(Counter::PoolSteals, steals);
        self.add(Counter::PoolParks, parks);
        self.add(Counter::PoolWakes, wakes);
        self.event("pool_drain_done", tasks);
    }

    /// Appends `label`/`value` to the ring log (no-op when disabled).
    pub fn event(&self, label: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        let at_nanos = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(TraceEvent {
                at_nanos,
                label,
                value,
            });
    }

    /// Starts timing `phase`; the returned RAII guard adds the elapsed
    /// wall time on drop (and logs start/end events). When the
    /// collector is disabled, neither the clock nor the ring is
    /// touched.
    #[must_use]
    pub fn span(&self, phase: Phase) -> PhaseSpan<'_> {
        let start = if self.enabled {
            self.event(phase_start_label(phase), 0);
            Some(Instant::now())
        } else {
            None
        };
        PhaseSpan {
            metrics: self,
            phase,
            start,
        }
    }

    /// Summarises everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> ExploreStats {
        let total = |c: Counter| -> u64 {
            self.stripes
                .iter()
                .map(|s| s.counters[c as usize].load(Ordering::Relaxed))
                .sum()
        };
        let ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        ExploreStats {
            enabled: self.enabled,
            model: String::new(),
            states_visited: total(Counter::StatesVisited),
            states_interned: total(Counter::StatesInterned),
            states_deduped: total(Counter::StatesDeduped),
            moves_generated: total(Counter::MovesGenerated),
            por_ample_hits: total(Counter::PorAmpleHits),
            por_full_expansions: total(Counter::PorFullExpansions),
            intern_probes: total(Counter::InternProbes),
            intern_hits: total(Counter::InternHits),
            intern_collisions: total(Counter::InternCollisions),
            intern_keys: total(Counter::InternKeys),
            intern_slots: total(Counter::InternSlots),
            pool_tasks: total(Counter::PoolTasks),
            pool_steals: total(Counter::PoolSteals),
            pool_parks: total(Counter::PoolParks),
            pool_wakes: total(Counter::PoolWakes),
            trip_wall_clock: total(Counter::TripWallClock),
            trip_states: total(Counter::TripStates),
            trip_cancelled: total(Counter::TripCancelled),
            trip_worker_panic: total(Counter::TripWorkerPanic),
            trip_interleavings: total(Counter::TripInterleavings),
            trip_actions: total(Counter::TripActions),
            dpor_proviso_blocks: total(Counter::DporProvisoBlocks),
            dpor_flush_ample_hits: total(Counter::DporFlushAmpleHits),
            dpor_prev_carries: total(Counter::DporPrevCarries),
            await_collapsed: total(Counter::AwaitCollapsed),
            await_wakeups: total(Counter::AwaitWakeups),
            graph_build_nanos: self.phase_nanos[Phase::GraphBuild as usize].load(Ordering::Relaxed),
            behaviour_eval_nanos: self.phase_nanos[Phase::BehaviourEval as usize]
                .load(Ordering::Relaxed),
            race_search_nanos: self.phase_nanos[Phase::RaceSearch as usize].load(Ordering::Relaxed),
            census_nanos: self.phase_nanos[Phase::Census as usize].load(Ordering::Relaxed),
            pool_drain_nanos: self.phase_nanos[Phase::PoolDrain as usize].load(Ordering::Relaxed),
            events: ring.events.iter().cloned().collect(),
            events_dropped: ring.dropped,
        }
    }
}

/// A stack-local counter batch for single-thread hot loops.
///
/// Even uncontended, [`ExploreMetrics::add`] costs a thread-local
/// stripe lookup plus an atomic RMW — a measurable tax when a DFS bumps
/// several counters per explored state. A tally turns those into plain
/// [`Cell`](std::cell::Cell) additions and pays the striped atomics
/// once per counter when dropped, so the whole loop costs what a
/// handful of direct `add` calls would. Recording into a tally is so
/// cheap it skips the enabled check; the flush discards everything when
/// the collector is disabled.
///
/// Takes `&self` so recursive explorers can share one tally without
/// threading `&mut` through the recursion. Not `Sync`: parallel phases
/// keep recording straight into the striped collector.
#[derive(Debug)]
pub struct CounterTally<'a> {
    metrics: &'a ExploreMetrics,
    counts: [std::cell::Cell<u64>; N_COUNTERS],
}

impl<'a> CounterTally<'a> {
    /// A zeroed tally flushing into `metrics` on drop.
    #[must_use]
    pub fn new(metrics: &'a ExploreMetrics) -> Self {
        CounterTally {
            metrics,
            counts: std::array::from_fn(|_| std::cell::Cell::new(0)),
        }
    }

    /// Adds `n` to the local `counter` batch.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        let cell = &self.counts[counter as usize];
        cell.set(cell.get() + n);
    }

    /// Adds 1 to the local `counter` batch.
    #[inline]
    pub fn bump(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Batches one state expansion (the tally-side
    /// [`ExploreMetrics::record_expansion`]).
    #[inline]
    pub fn expansion(&self, moves: usize, kind: ExpansionKind) {
        self.add(Counter::MovesGenerated, moves as u64);
        if kind.is_ample() {
            self.bump(Counter::PorAmpleHits);
        } else {
            self.bump(Counter::PorFullExpansions);
        }
        match kind {
            ExpansionKind::FullProviso => self.bump(Counter::DporProvisoBlocks),
            ExpansionKind::AmpleFlush => self.bump(Counter::DporFlushAmpleHits),
            ExpansionKind::Full | ExpansionKind::Ample => {}
        }
    }

    /// Batches one prev-carry (the tally-side
    /// [`ExploreMetrics::record_prev_carry`]).
    #[inline]
    pub fn prev_carry(&self) {
        self.bump(Counter::DporPrevCarries);
    }
}

impl Drop for CounterTally<'_> {
    fn drop(&mut self) {
        if !self.metrics.enabled {
            return;
        }
        let stripe = &self.metrics.stripes[stripe_index()];
        for (slot, count) in stripe.counters.iter().zip(&self.counts) {
            let n = count.get();
            if n != 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
    }
}

fn phase_start_label(phase: Phase) -> &'static str {
    match phase {
        Phase::GraphBuild => "phase_start:graph_build",
        Phase::BehaviourEval => "phase_start:behaviour_eval",
        Phase::RaceSearch => "phase_start:race_search",
        Phase::Census => "phase_start:census",
        Phase::PoolDrain => "phase_start:pool_drain",
    }
}

fn phase_end_label(phase: Phase) -> &'static str {
    match phase {
        Phase::GraphBuild => "phase_end:graph_build",
        Phase::BehaviourEval => "phase_end:behaviour_eval",
        Phase::RaceSearch => "phase_end:race_search",
        Phase::Census => "phase_end:census",
        Phase::PoolDrain => "phase_end:pool_drain",
    }
}

/// RAII timer for one [`Phase`] (see [`ExploreMetrics::span`]).
#[derive(Debug)]
pub struct PhaseSpan<'m> {
    metrics: &'m ExploreMetrics,
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for PhaseSpan<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.metrics.phase_nanos[self.phase as usize].fetch_add(nanos, Ordering::Relaxed);
            self.metrics.event(phase_end_label(self.phase), nanos);
        }
    }
}

/// The summarised statistics of one analysis run: every counter, the
/// per-phase wall times, and the tail of the event log. All counts are
/// unsigned totals (never negative, never NaN); a collector that was
/// disabled reports `enabled == false` and all-zero counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExploreStats {
    /// Was the run actually recording? (`false` means every count
    /// below is a structural zero, not a measured zero.)
    pub enabled: bool,
    /// The memory model the producing analysis explored under
    /// (`"sc"`, `"tso"` or `"pso"`). The collector itself is
    /// model-agnostic, so [`ExploreMetrics::snapshot`] leaves this
    /// empty and the analysis layer stamps it; an empty string
    /// serialises as the `"sc"` baseline.
    pub model: String,
    /// See [`Counter::StatesVisited`].
    pub states_visited: u64,
    /// See [`Counter::StatesInterned`].
    pub states_interned: u64,
    /// See [`Counter::StatesDeduped`].
    pub states_deduped: u64,
    /// See [`Counter::MovesGenerated`].
    pub moves_generated: u64,
    /// See [`Counter::PorAmpleHits`].
    pub por_ample_hits: u64,
    /// See [`Counter::PorFullExpansions`].
    pub por_full_expansions: u64,
    /// See [`Counter::InternProbes`].
    pub intern_probes: u64,
    /// See [`Counter::InternHits`].
    pub intern_hits: u64,
    /// See [`Counter::InternCollisions`].
    pub intern_collisions: u64,
    /// See [`Counter::InternKeys`].
    pub intern_keys: u64,
    /// See [`Counter::InternSlots`].
    pub intern_slots: u64,
    /// See [`Counter::PoolTasks`].
    pub pool_tasks: u64,
    /// See [`Counter::PoolSteals`].
    pub pool_steals: u64,
    /// See [`Counter::PoolParks`].
    pub pool_parks: u64,
    /// See [`Counter::PoolWakes`].
    pub pool_wakes: u64,
    /// See [`Counter::TripWallClock`].
    pub trip_wall_clock: u64,
    /// See [`Counter::TripStates`].
    pub trip_states: u64,
    /// See [`Counter::TripCancelled`].
    pub trip_cancelled: u64,
    /// See [`Counter::TripWorkerPanic`].
    pub trip_worker_panic: u64,
    /// See [`Counter::TripInterleavings`].
    pub trip_interleavings: u64,
    /// See [`Counter::TripActions`].
    pub trip_actions: u64,
    /// See [`Counter::DporProvisoBlocks`].
    pub dpor_proviso_blocks: u64,
    /// See [`Counter::DporFlushAmpleHits`].
    pub dpor_flush_ample_hits: u64,
    /// See [`Counter::DporPrevCarries`].
    pub dpor_prev_carries: u64,
    /// See [`Counter::AwaitCollapsed`].
    pub await_collapsed: u64,
    /// See [`Counter::AwaitWakeups`].
    pub await_wakeups: u64,
    /// Inclusive wall time of [`Phase::GraphBuild`], in nanoseconds.
    pub graph_build_nanos: u64,
    /// Inclusive wall time of [`Phase::BehaviourEval`], in nanoseconds.
    pub behaviour_eval_nanos: u64,
    /// Inclusive wall time of [`Phase::RaceSearch`], in nanoseconds.
    pub race_search_nanos: u64,
    /// Inclusive wall time of [`Phase::Census`], in nanoseconds.
    pub census_nanos: u64,
    /// Inclusive wall time of [`Phase::PoolDrain`], in nanoseconds.
    pub pool_drain_nanos: u64,
    /// The tail of the event ring (at most [`RING_CAPACITY`] entries,
    /// oldest first).
    pub events: Vec<TraceEvent>,
    /// Events the ring had to drop to stay bounded.
    pub events_dropped: u64,
}

impl ExploreStats {
    /// Aggregate interner load factor (`keys / slots`), `0.0` when no
    /// interner stats were harvested. Always finite.
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        if self.intern_slots == 0 {
            0.0
        } else {
            // Both operands are finite and the divisor is non-zero, so
            // the quotient can be neither NaN nor infinite.
            (self.intern_keys as f64) / (self.intern_slots as f64)
        }
    }

    /// Total budget trips observed, across every cause.
    #[must_use]
    pub fn trips_total(&self) -> u64 {
        self.trip_wall_clock
            + self.trip_states
            + self.trip_cancelled
            + self.trip_worker_panic
            + self.trip_interleavings
            + self.trip_actions
    }

    /// Serialises the stats to one line of JSON with a stable key
    /// order, starting with `"schema": "drfcheck-stats-v2"`. The event
    /// ring is *not* included (dump it with
    /// [`trace_dump`](ExploreStats::trace_dump) /
    /// `drfcheck --trace-out` instead); `events_dropped` is, so a
    /// saturated ring is visible from the stats alone.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        s.push_str(&format!("\"schema\":\"{STATS_SCHEMA}\""));
        s.push_str(&format!(",\"enabled\":{}", self.enabled));
        let model = if self.model.is_empty() {
            "sc"
        } else {
            self.model.as_str()
        };
        s.push_str(&format!(",\"model\":\"{model}\""));
        for (key, value) in [
            ("states_visited", self.states_visited),
            ("states_interned", self.states_interned),
            ("states_deduped", self.states_deduped),
            ("moves_generated", self.moves_generated),
            ("por_ample_hits", self.por_ample_hits),
            ("por_full_expansions", self.por_full_expansions),
            ("intern_probes", self.intern_probes),
            ("intern_hits", self.intern_hits),
            ("intern_collisions", self.intern_collisions),
            ("intern_keys", self.intern_keys),
            ("intern_slots", self.intern_slots),
            ("pool_tasks", self.pool_tasks),
            ("pool_steals", self.pool_steals),
            ("pool_parks", self.pool_parks),
            ("pool_wakes", self.pool_wakes),
            ("trip_wall_clock", self.trip_wall_clock),
            ("trip_states", self.trip_states),
            ("trip_cancelled", self.trip_cancelled),
            ("trip_worker_panic", self.trip_worker_panic),
            ("trip_interleavings", self.trip_interleavings),
            ("trip_actions", self.trip_actions),
            ("dpor_proviso_blocks", self.dpor_proviso_blocks),
            ("dpor_flush_ample_hits", self.dpor_flush_ample_hits),
            ("dpor_prev_carries", self.dpor_prev_carries),
            ("await_collapsed", self.await_collapsed),
            ("await_wakeups", self.await_wakeups),
            ("graph_build_nanos", self.graph_build_nanos),
            ("behaviour_eval_nanos", self.behaviour_eval_nanos),
            ("race_search_nanos", self.race_search_nanos),
            ("census_nanos", self.census_nanos),
            ("pool_drain_nanos", self.pool_drain_nanos),
            ("events_dropped", self.events_dropped),
        ] {
            s.push_str(&format!(",\"{key}\":{value}"));
        }
        s.push_str(&format!(",\"load_factor\":{:.6}", self.load_factor()));
        s.push('}');
        s
    }

    /// Renders the event ring as a tab-separated text dump (one event
    /// per line: nanosecond timestamp, label, value), preceded by a
    /// one-line header. The format `drfcheck --trace-out` writes.
    #[must_use]
    pub fn trace_dump(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# drfcheck trace: {} events ({} dropped)\n",
            self.events.len(),
            self.events_dropped
        ));
        for e in &self.events {
            out.push_str(&format!("{}\t{}\t{}\n", e.at_nanos, e.label, e.value));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let m = ExploreMetrics::disabled();
        assert!(!m.is_enabled());
        m.bump(Counter::StatesVisited);
        m.add(Counter::MovesGenerated, 10);
        m.event("ignored", 1);
        {
            let _span = m.span(Phase::RaceSearch);
        }
        let stats = m.snapshot();
        assert_eq!(stats, ExploreStats::default());
        assert!(!stats.enabled);
    }

    #[test]
    fn counters_accumulate_across_threads() {
        let m = ExploreMetrics::collector();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        m.bump(Counter::StatesVisited);
                    }
                    m.add(Counter::MovesGenerated, 5);
                });
            }
        });
        let stats = m.snapshot();
        assert_eq!(stats.states_visited, 4000);
        assert_eq!(stats.moves_generated, 20);
    }

    #[test]
    fn spans_time_phases_and_log_events() {
        let m = ExploreMetrics::collector();
        {
            let _span = m.span(Phase::GraphBuild);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let stats = m.snapshot();
        assert!(stats.graph_build_nanos >= 1_000_000);
        assert_eq!(stats.behaviour_eval_nanos, 0);
        let labels: Vec<_> = stats.events.iter().map(|e| e.label).collect();
        assert_eq!(
            labels,
            vec!["phase_start:graph_build", "phase_end:graph_build"]
        );
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let m = ExploreMetrics::collector();
        for i in 0..(RING_CAPACITY as u64 + 10) {
            m.event("tick", i);
        }
        let stats = m.snapshot();
        assert_eq!(stats.events.len(), RING_CAPACITY);
        assert_eq!(stats.events_dropped, 10);
        // Oldest events were the ones dropped.
        assert_eq!(stats.events[0].value, 10);
    }

    #[test]
    fn json_is_stable_and_finite() {
        let stats = ExploreStats {
            enabled: true,
            intern_keys: 7,
            intern_slots: 16,
            ..ExploreStats::default()
        };
        let json = stats.to_json();
        assert!(json.starts_with("{\"schema\":\"drfcheck-stats-v2\",\"enabled\":true"));
        assert!(
            json.contains("\"model\":\"sc\""),
            "unstamped stats default to the sc baseline: {json}"
        );
        let mut tso = stats;
        tso.model = "tso".to_string();
        assert!(tso.to_json().contains("\"model\":\"tso\""));
        let json = ExploreStats {
            enabled: true,
            intern_keys: 7,
            intern_slots: 16,
            ..ExploreStats::default()
        }
        .to_json();
        assert!(json.contains("\"load_factor\":0.4375"));
        assert!(!json.contains("NaN"));
        // A negative value would serialise as `:-…` (the only hyphens
        // elsewhere are the schema id's).
        assert!(!json.contains(":-"), "no negative counters: {json}");
        // Zero slots must not divide by zero.
        assert_eq!(ExploreStats::default().load_factor(), 0.0);
    }

    #[test]
    fn trace_dump_lists_events_in_order() {
        let m = ExploreMetrics::collector();
        m.event("a", 1);
        m.event("b", 2);
        let dump = m.snapshot().trace_dump();
        let lines: Vec<_> = dump.lines().collect();
        assert!(lines[0].starts_with("# drfcheck trace: 2 events"));
        assert!(lines[1].ends_with("\ta\t1"));
        assert!(lines[2].ends_with("\tb\t2"));
    }
}
