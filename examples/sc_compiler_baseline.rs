//! Experiment E13: quantify the paper's motivation (§1, §7) against the
//! Shasha–Snir SC-preserving baseline.
//!
//! For each corpus program, compare the adjacent program-order access
//! pairs that the paper's DRF-contract reorderability (§4) licenses with
//! those an SC-preserving compiler (delay-set analysis) may touch. The
//! `drf-only` column is exactly the optimisation headroom the DRF
//! contract buys.
//!
//! Run with `cargo run --example sc_compiler_baseline`.

use transafety::checker::{delay_stats, Analysis};
use transafety::litmus::corpus;

fn main() {
    let opts = Analysis::new();
    println!(
        "{:<24} {:>6} {:>8} {:>8} {:>9}",
        "program", "pairs", "DRF-ok", "SC-ok", "DRF-only"
    );
    let mut total_pairs = 0;
    let mut total_drf = 0;
    let mut total_sc = 0;
    let mut total_only = 0;
    for l in corpus() {
        let p = l.parse().program;
        let s = delay_stats(&p, &opts);
        println!(
            "{:<24} {:>6} {:>8} {:>8} {:>9}",
            l.name, s.adjacent_pairs, s.drf_reorderable, s.sc_reorderable, s.drf_only
        );
        total_pairs += s.adjacent_pairs;
        total_drf += s.drf_reorderable;
        total_sc += s.sc_reorderable;
        total_only += s.drf_only;
    }
    println!(
        "{:<24} {:>6} {:>8} {:>8} {:>9}",
        "TOTAL", total_pairs, total_drf, total_sc, total_only
    );
    assert!(
        total_only > 0,
        "the DRF contract must license reorderings the SC baseline forbids"
    );
    assert!(
        total_drf >= total_sc,
        "on this corpus the DRF contract is never more restrictive"
    );
    println!(
        "\nThe DRF contract licenses {total_drf}/{total_pairs} adjacent reorderings; \
         an SC-preserving compiler only {total_sc}/{total_pairs}. \
         {total_only} reorderings are DRF-only — the optimisation headroom \
         the paper's theorems make safe. ✔"
    );
}
