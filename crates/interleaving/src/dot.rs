//! Graphviz (DOT) rendering of interleavings and their happens-before
//! structure — a debugging aid for race reports and the worked examples.

use std::fmt::Write as _;

use crate::{HappensBefore, Interleaving};

/// Renders the interleaving as a Graphviz digraph: one node per event
/// (grouped per thread), solid edges for immediate program-order
/// successors, dashed edges for synchronises-with pairs, and red
/// double-headed edges for happens-before-unordered conflicting accesses
/// (the §3 data races).
///
/// # Example
///
/// ```
/// use transafety_traces::{Action, Loc, ThreadId, Value};
/// use transafety_interleaving::{hb_dot, Event, Interleaving};
/// let x = Loc::normal(0);
/// let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
/// let i = Interleaving::from_events([
///     Event::new(t0, Action::start(t0)),
///     Event::new(t1, Action::start(t1)),
///     Event::new(t0, Action::write(x, Value::new(1))),
///     Event::new(t1, Action::read(x, Value::new(1))),
/// ]);
/// let dot = hb_dot(&i);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("color=red"), "the race shows up in red");
/// ```
#[must_use]
pub fn hb_dot(i: &Interleaving) -> String {
    let hb = HappensBefore::of(i);
    let mut out = String::from(
        "digraph happens_before {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    // nodes, clustered per thread
    for th in i.threads() {
        let _ = writeln!(out, "  subgraph cluster_t{} {{", th.index());
        let _ = writeln!(out, "    label=\"thread {}\";", th.index());
        for (k, e) in i.iter().enumerate() {
            if e.thread() == th {
                let _ = writeln!(out, "    n{k} [label=\"{}: {}\"];", k, e.action());
            }
        }
        out.push_str("  }\n");
    }
    // program-order edges (immediate successors only, for readability)
    for th in i.threads() {
        let mut prev: Option<usize> = None;
        for (k, e) in i.iter().enumerate() {
            if e.thread() == th {
                if let Some(p) = prev {
                    let _ = writeln!(out, "  n{p} -> n{k};");
                }
                prev = Some(k);
            }
        }
    }
    // synchronises-with edges
    for a in 0..i.len() {
        for b in a + 1..i.len() {
            if i[a].action().is_release_acquire_pair(&i[b].action()) {
                let _ = writeln!(out, "  n{a} -> n{b} [style=dashed, label=\"sw\"];");
            }
        }
    }
    // hb-unordered conflicts (races)
    for (a, b) in i.hb_unordered_conflicts() {
        let _ = writeln!(out, "  n{a} -> n{b} [dir=both, color=red, label=\"race\"];");
    }
    let _ = hb; // hb computed through hb_unordered_conflicts
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;
    use transafety_traces::{Action, Loc, Monitor, ThreadId, Value};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn dot_contains_threads_and_sw_edges() {
        let m = Monitor::new(0);
        let x = Loc::normal(0);
        let i = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(1), Action::start(t(1))),
            Event::new(t(0), Action::lock(m)),
            Event::new(t(0), Action::write(x, Value::new(1))),
            Event::new(t(0), Action::unlock(m)),
            Event::new(t(1), Action::lock(m)),
            Event::new(t(1), Action::read(x, Value::new(1))),
            Event::new(t(1), Action::unlock(m)),
        ]);
        let dot = hb_dot(&i);
        assert!(dot.contains("cluster_t0") && dot.contains("cluster_t1"));
        assert!(dot.contains("style=dashed"), "unlock→lock sw edge rendered");
        assert!(!dot.contains("color=red"), "no race in the locked version");
    }

    #[test]
    fn dot_marks_races() {
        let x = Loc::normal(0);
        let i = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(1), Action::start(t(1))),
            Event::new(t(0), Action::write(x, Value::new(1))),
            Event::new(t(1), Action::read(x, Value::new(1))),
        ]);
        assert!(hb_dot(&i).contains("color=red"));
    }

    #[test]
    fn empty_interleaving_renders() {
        let dot = hb_dot(&Interleaving::new());
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
    }
}
