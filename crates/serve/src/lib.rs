//! # transafety-serve — fault-isolated batch checking as a service
//!
//! The engine so far answers one question per process: parse a
//! program, explore it under a model, print a verdict, exit. This
//! crate turns that into a *long-running batch service* — `drfcheck
//! serve` — that accepts many check/races/behaviours requests as JSON
//! lines (over stdin or a Unix socket) and answers each one
//! independently, with the robustness properties a service needs that
//! a one-shot CLI does not:
//!
//! * **fault isolation** ([`server`]) — every request runs under its
//!   own budget and `catch_unwind`; a panicking or over-budget request
//!   degrades to an `error`/`unknown` response while its siblings
//!   proceed untouched, with one bounded sequential retry before a
//!   panic becomes an answer;
//! * **backpressure** ([`server`]) — a bounded admission queue sheds
//!   the *oldest* request with an explicit `overloaded` response when
//!   full; nothing is ever dropped silently;
//! * **crash-safe memoisation** ([`cache`]) — complete, fault-free
//!   verdicts are published to a disk cache keyed by the normalised
//!   program and the semantic options, written via temp-file +
//!   atomic-rename with checksummed entries; a corrupt entry is
//!   quarantined and recomputed, never trusted;
//! * **deterministic fault injection** ([`faults`]) — a `FaultPlan`
//!   can force worker panics, cache corruption and slow I/O on chosen
//!   requests, so every degradation path above is exercised by tests
//!   through the production code, not simulated beside it;
//! * **observability** ([`stats`]) — hit/miss, shed/retry/fault
//!   counters and per-request latency quantiles, serialised under the
//!   `drfcheck-stats-v2` schema as a `serve` section.
//!
//! The safety discipline of the underlying checker is preserved at the
//! service boundary: no degraded path (panic, retry, truncation,
//! drain, corrupt cache) can ever produce a `drf_proven` response —
//! proofs only leave the process on complete, fault-free runs, exactly
//! as in the one-shot CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod faults;
pub mod proto;
pub mod server;
pub mod stats;

pub use cache::{normalise, CacheEntry, CacheKey, CacheLookup, VerdictCache};
pub use faults::FaultPlan;
pub use proto::{parse_request, Cmd, Request, RequestError};
pub use server::{ServeConfig, ServeSummary, Server};
pub use stats::{LatencyHistogram, ServeStats};
