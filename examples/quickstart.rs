//! Quickstart: parse a concurrent program, decide data race freedom,
//! enumerate its compiler optimisations, and verify every one of them
//! against the paper's theorems.
//!
//! Run with `cargo run --example quickstart`.

use transafety::checker::{check_rewrite, drf_guarantee, Analysis, Correspondence, DrfVerdict};
use transafety::lang::parse_program;
use transafety::syntactic::all_rewrites;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A lock-disciplined producer/consumer pair with a redundant read
    // and an access that can sink into the critical section.
    let src = "
        // producer
        lock m; x := 1; x := 2; unlock m;
        ||
        // consumer
        r3 := y;
        lock m; r1 := x; r2 := x; print r2; unlock m;
    ";
    let original = parse_program(src)?.program;
    let opts = Analysis::new();

    println!("original program:\n{original}");

    // 1. Data race freedom (§3).
    match transafety::checker::race_witness(&original, &opts) {
        None => println!("the program is DATA RACE FREE\n"),
        Some(w) => println!("data race: {w}\n"),
    }

    // 2. Every applicable optimisation of Fig. 10/11, verified.
    let rewrites = all_rewrites(&original);
    println!("{} applicable transformations:", rewrites.len());
    for rw in &rewrites {
        let corr = check_rewrite(&original, rw, &opts);
        let verdict = drf_guarantee(&rw.result, &original, &opts);
        let corr_str = match corr {
            Correspondence::Verified { class } => format!("semantic class: {class}"),
            other => format!("UNEXPECTED: {other:?}"),
        };
        println!("  {rw:<40} {corr_str}; {verdict}");
        assert!(
            verdict.is_consistent_with_paper(),
            "a safe rule violated the DRF guarantee — this would falsify the paper"
        );
    }

    // 3. Pick one elimination and show the optimised program.
    if let Some(rw) = rewrites.iter().find(|r| r.rule.is_elimination()) {
        println!("\nafter {}:\n{}", rw.rule, rw.result);
        assert_eq!(
            drf_guarantee(&rw.result, &original, &opts),
            DrfVerdict::Holds
        );
    }
    Ok(())
}
