//! E16: the happens-before partial-order reduction.
//!
//! Runs the E14 workload family (the heaviest litmus entries plus
//! every shipped `programs/*.tsl`) through the behaviour and race
//! engines with POR on and off. Before timing anything it prints a
//! states-explored table — the reduction's primary claim is about
//! state count, not microseconds — and asserts that the verdict and
//! the behaviour set are bit-identical between the two engines, so a
//! regression in POR soundness fails the bench run itself.

use std::hint::black_box;
use transafety_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

use transafety::interleaving::BudgetGuard;
use transafety::lang::{parse_program, ExploreOptions, Program, ProgramExplorer};
use transafety::{Budget, CancelToken};

/// The E14 workload family: heaviest litmus entries + `programs/*.tsl`.
fn corpus() -> Vec<(String, Program)> {
    let mut corpus: Vec<(String, Program)> = Vec::new();
    for name in ["iriw", "wrc", "dekker-core", "mp-spin"] {
        let l = transafety::litmus::by_name(name).expect("corpus name");
        corpus.push((name.to_string(), l.parse().program));
    }
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../programs");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("programs/ directory exists")
        .map(|e| e.expect("readable directory entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "tsl"))
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("readable program file");
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        corpus.push((
            name,
            parse_program(&src).expect("valid .tsl program").program,
        ));
    }
    corpus
}

fn opts(por: bool) -> ExploreOptions {
    ExploreOptions {
        por,
        ..ExploreOptions::default()
    }
}

/// Counts the states the behaviour search actually visits.
fn governed_states(p: &Program, por: bool) -> (usize, bool) {
    let guard = BudgetGuard::new(&Budget::unlimited(), CancelToken::new());
    let b = ProgramExplorer::new(p).behaviours_governed(&opts(por), &guard);
    (guard.states(), b.complete)
}

/// The reduction's claim, checked and printed before any timing:
/// identical observables, fewer states.
fn states_table(corpus: &[(String, Program)]) {
    println!(
        "\nE16/por_states_explored (behaviour search, sequential)\n\
         {:<22} {:>10} {:>10} {:>9}",
        "program", "full", "reduced", "ratio"
    );
    for (name, p) in corpus {
        let ex = ProgramExplorer::new(p);
        let on = ex.behaviours(&opts(true));
        let off = ex.behaviours(&opts(false));
        assert_eq!(on, off, "{name}: POR changed the behaviour set");
        assert_eq!(
            ex.race_witness(&opts(true)).is_some(),
            ex.race_witness(&opts(false)).is_some(),
            "{name}: POR changed the race verdict"
        );
        let (full, _) = governed_states(p, false);
        let (reduced, _) = governed_states(p, true);
        println!(
            "{:<22} {:>10} {:>10} {:>8.2}x",
            name,
            full,
            reduced,
            full as f64 / reduced.max(1) as f64
        );
    }
    println!();
}

fn behaviours_por(c: &mut Criterion) {
    let corpus = corpus();
    states_table(&corpus);
    let mut group = c.benchmark_group("E16/por/behaviours");
    for (name, p) in &corpus {
        for (tag, por) in [("full", false), ("reduced", true)] {
            let o = opts(por);
            group.bench_with_input(BenchmarkId::new(tag, name), p, |b, p| {
                b.iter(|| {
                    ProgramExplorer::new(black_box(p))
                        .behaviours(&o)
                        .value
                        .len()
                })
            });
        }
    }
    group.finish();
}

fn race_search_por(c: &mut Criterion) {
    let corpus = corpus();
    let mut group = c.benchmark_group("E16/por/race_search");
    for (name, p) in &corpus {
        for (tag, por) in [("full", false), ("reduced", true)] {
            let o = opts(por);
            group.bench_with_input(BenchmarkId::new(tag, name), p, |b, p| {
                b.iter(|| {
                    ProgramExplorer::new(black_box(p))
                        .race_witness(&o)
                        .is_some()
                })
            });
        }
    }
    group.finish();
}

fn parallel_por(c: &mut Criterion) {
    let corpus = corpus();
    let mut group = c.benchmark_group("E16/por/behaviours_jobs4");
    for (name, p) in &corpus {
        for (tag, por) in [("full", false), ("reduced", true)] {
            let o = opts(por);
            group.bench_with_input(BenchmarkId::new(tag, name), p, |b, p| {
                b.iter(|| {
                    ProgramExplorer::new(black_box(p))
                        .behaviours_par(&o, 4)
                        .value
                        .len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, behaviours_por, race_search_por, parallel_por);
criterion_main!(benches);
