//! Pins the corpus-level numbers recorded in `EXPERIMENTS.md` so the
//! documented results cannot silently drift from the code.

use transafety::checker::{delay_stats, Analysis};
use transafety::litmus::corpus;

/// E13: the DRF-vs-SC-baseline totals over the corpus.
#[test]
fn e13_totals_match_experiments_md() {
    let opts = Analysis::new();
    let mut pairs = 0;
    let mut drf = 0;
    let mut sc = 0;
    let mut only = 0;
    for l in corpus() {
        let s = delay_stats(&l.parse().program, &opts);
        pairs += s.adjacent_pairs;
        drf += s.drf_reorderable;
        sc += s.sc_reorderable;
        only += s.drf_only;
    }
    assert_eq!(
        (pairs, drf, sc, only),
        (75, 60, 23, 40),
        "EXPERIMENTS.md E13 records 75/60/23/40 — update both places together"
    );
}

/// The corpus size quoted in `EXPERIMENTS.md`.
#[test]
fn corpus_size_matches_experiments_md() {
    assert_eq!(corpus().len(), 32, "EXPERIMENTS.md says 32-program corpus");
}
