//! The reorderability relation and the §4 reordering table.

use std::fmt;

use transafety_traces::{Action, Loc, Monitor, Value};

/// Is action `a` *reorderable with* a later action `b` (§4)?
///
/// `a` is reorderable with `b` iff
///
/// 1. `a` is a non-volatile memory access and `b` is a non-conflicting
///    non-volatile memory access, an acquire, or an external action; or
/// 2. `b` is a non-volatile memory access and `a` is a non-conflicting
///    non-volatile memory access, a release, or an external action.
///
/// The relation is deliberately **asymmetric** to allow roach-motel
/// reordering (moving normal accesses *into* synchronised blocks): a
/// normal access may move past a later acquire, and a release may move
/// past a later normal access, but not vice versa.
///
/// Thread start actions are reorderable with nothing.
///
/// # Example
///
/// ```
/// use transafety_traces::{Action, Loc, Monitor, Value};
/// use transafety_transform::reorderable;
/// let x = Loc::normal(0);
/// let m = Monitor::new(0);
/// let w = Action::write(x, Value::new(1));
/// // roach motel: a write may sink below a later lock …
/// assert!(reorderable(&w, &Action::lock(m)));
/// // … but a lock may not sink below a later write.
/// assert!(!reorderable(&Action::lock(m), &w));
/// ```
#[must_use]
pub fn reorderable(a: &Action, b: &Action) -> bool {
    let case1 = a.is_normal_access()
        && ((b.is_normal_access() && !a.conflicts_with(b)) || b.is_acquire() || b.is_external());
    let case2 = b.is_normal_access()
        && ((a.is_normal_access() && !a.conflicts_with(b)) || a.is_release() || a.is_external());
    case1 || case2
}

/// A row/column label of the §4 reordering table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReorderClass {
    /// A write to a non-volatile location, `W[x=v]`.
    Write,
    /// A read from a non-volatile location, `R[x=v]`.
    Read,
    /// An acquire action (lock or volatile read).
    Acquire,
    /// A release action (unlock or volatile write).
    Release,
    /// An external action.
    External,
}

impl ReorderClass {
    /// The five classes in the paper's table order.
    pub const ALL: [ReorderClass; 5] = [
        ReorderClass::Write,
        ReorderClass::Read,
        ReorderClass::Acquire,
        ReorderClass::Release,
        ReorderClass::External,
    ];

    /// Representative actions of the class. Accesses take a location so
    /// the table can probe the same-location and different-location
    /// cases; synchronisation classes include both the monitor and the
    /// volatile representative.
    fn representatives(self, loc: Loc) -> Vec<Action> {
        let volatile = Loc::volatile(1000);
        match self {
            ReorderClass::Write => vec![Action::write(loc, Value::new(1))],
            ReorderClass::Read => vec![Action::read(loc, Value::new(1))],
            ReorderClass::Acquire => {
                vec![
                    Action::lock(Monitor::new(0)),
                    Action::read(volatile, Value::ZERO),
                ]
            }
            ReorderClass::Release => {
                vec![
                    Action::unlock(Monitor::new(0)),
                    Action::write(volatile, Value::ZERO),
                ]
            }
            ReorderClass::External => vec![Action::external(Value::ZERO)],
        }
    }
}

impl fmt::Display for ReorderClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReorderClass::Write => "W[x=v]",
            ReorderClass::Read => "R[x=v]",
            ReorderClass::Acquire => "Acquire",
            ReorderClass::Release => "Release",
            ReorderClass::External => "External",
        };
        f.write_str(s)
    }
}

/// One cell of the §4 reordering table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixEntry {
    /// Reorderable for any pair of representatives (the table's `✓`).
    Always,
    /// Reorderable only when the two accesses touch different locations
    /// (the table's `x ≠ y`).
    DifferentLocation,
    /// Never reorderable (the table's `✗`).
    Never,
}

impl fmt::Display for MatrixEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MatrixEntry::Always => "✓",
            MatrixEntry::DifferentLocation => "x≠y",
            MatrixEntry::Never => "✗",
        };
        f.write_str(s)
    }
}

/// Regenerates the §4 reordering table by probing [`reorderable`] with
/// representative actions: entry `[i][j]` says when an action of class
/// `ALL[i]` is reorderable with a later action of class `ALL[j]`.
///
/// Every representative pair of a class combination must agree, otherwise
/// the classes would not be well-defined table labels; this invariant is
/// asserted by the unit tests.
#[must_use]
pub fn reorder_matrix() -> [[MatrixEntry; 5]; 5] {
    let same = Loc::normal(0);
    let diff = Loc::normal(1);
    let mut out = [[MatrixEntry::Never; 5]; 5];
    for (i, ca) in ReorderClass::ALL.iter().enumerate() {
        for (j, cb) in ReorderClass::ALL.iter().enumerate() {
            let same_loc = ca
                .representatives(same)
                .iter()
                .any(|a| cb.representatives(same).iter().any(|b| reorderable(a, b)));
            let diff_loc = ca
                .representatives(same)
                .iter()
                .any(|a| cb.representatives(diff).iter().any(|b| reorderable(a, b)));
            out[i][j] = match (same_loc, diff_loc) {
                (true, true) => MatrixEntry::Always,
                (false, true) => MatrixEntry::DifferentLocation,
                (false, false) => MatrixEntry::Never,
                (true, false) => {
                    unreachable!("same-location reorderability implies different-location")
                }
            };
        }
    }
    out
}

/// Renders the reordering table in the paper's layout.
#[must_use]
pub fn render_reorder_matrix() -> String {
    let m = reorder_matrix();
    let mut s = String::from("a \\ b    | W[y]  R[y]  Acq   Rel   Ext\n");
    for (i, c) in ReorderClass::ALL.iter().enumerate() {
        s.push_str(&format!("{:<8} |", c.to_string()));
        for cell in &m[i] {
            s.push_str(&format!(" {:<5}", cell.to_string()));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Loc {
        Loc::normal(0)
    }
    fn y() -> Loc {
        Loc::normal(1)
    }
    fn v(n: u32) -> Value {
        Value::new(n)
    }

    #[test]
    fn matrix_matches_the_paper_table() {
        use MatrixEntry::{Always as A, DifferentLocation as D, Never as N};
        let expected = [
            // b =      W  R  Acq Rel Ext        a =
            [D, D, A, N, A], // W[x]
            [D, A, A, N, A], // R[x]
            [N, N, N, N, N], // Acquire
            [A, A, N, N, N], // Release
            [A, A, N, N, N], // External
        ];
        assert_eq!(reorder_matrix(), expected);
    }

    #[test]
    fn reads_of_same_location_are_reorderable() {
        let r1 = Action::read(x(), v(1));
        let r2 = Action::read(x(), v(2));
        assert!(reorderable(&r1, &r2), "reads never conflict");
    }

    #[test]
    fn conflicting_accesses_are_not_reorderable() {
        let w = Action::write(x(), v(1));
        let r = Action::read(x(), v(1));
        assert!(!reorderable(&w, &r));
        assert!(!reorderable(&r, &w));
        assert!(!reorderable(&w, &w));
        assert!(reorderable(&w, &Action::read(y(), v(1))));
    }

    #[test]
    fn roach_motel_asymmetry() {
        let m = Monitor::new(0);
        let w = Action::write(x(), v(1));
        let r = Action::read(x(), v(1));
        // into the critical section: allowed
        assert!(
            reorderable(&w, &Action::lock(m)),
            "W may sink past a later acquire"
        );
        assert!(
            reorderable(&Action::unlock(m), &w),
            "a release may sink past a later W"
        );
        // out of the critical section: forbidden
        assert!(!reorderable(&Action::lock(m), &w));
        assert!(!reorderable(&w, &Action::unlock(m)));
        assert!(!reorderable(&r, &Action::unlock(m)));
    }

    #[test]
    fn volatile_accesses_behave_as_their_sync_class() {
        let vl = Loc::volatile(7);
        let vw = Action::write(vl, v(1)); // release
        let vr = Action::read(vl, v(1)); // acquire
        let w = Action::write(x(), v(1));
        assert!(
            reorderable(&w, &vr),
            "normal write past later volatile read (acquire)"
        );
        assert!(
            !reorderable(&w, &vw),
            "not past a later volatile write (release)"
        );
        assert!(
            reorderable(&vw, &w),
            "volatile write (release) past later normal write"
        );
        assert!(!reorderable(&vr, &w), "volatile read (acquire) blocks");
        assert!(!reorderable(&vr, &vw) && !reorderable(&vw, &vr));
    }

    #[test]
    fn externals_reorder_with_normal_accesses_only() {
        let e = Action::external(v(1));
        let w = Action::write(x(), v(1));
        let m = Monitor::new(0);
        assert!(reorderable(&e, &w) && reorderable(&w, &e));
        assert!(!reorderable(&e, &Action::external(v(2))));
        assert!(!reorderable(&e, &Action::lock(m)));
        assert!(!reorderable(&Action::unlock(m), &e));
    }

    #[test]
    fn start_actions_never_reorder() {
        use transafety_traces::ThreadId;
        let s = Action::start(ThreadId::new(0));
        let w = Action::write(x(), v(1));
        assert!(!reorderable(&s, &w));
        assert!(!reorderable(&w, &s));
    }

    #[test]
    fn render_contains_all_rows() {
        let s = render_reorder_matrix();
        for c in ReorderClass::ALL {
            assert!(
                s.contains(&c.to_string().split('[').next().unwrap().to_string()),
                "{s}"
            );
        }
    }
}
