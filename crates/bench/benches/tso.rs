//! Benchmarks for the §8 TSO experiment (E11 of `DESIGN.md`): the
//! store-buffer machine and the "TSO is explained by the
//! transformations" check.

use std::hint::black_box;
use transafety_bench::{criterion_group, criterion_main, Criterion};

use transafety::lang::{ExploreOptions, ModelExplorer, ProgramExplorer};
use transafety::traces::Value;
use transafety::tso::{explain_tso, TsoModel};
use transafety_bench::corpus_program;

fn tso_vs_sc_exploration(c: &mut Criterion) {
    let opts = ExploreOptions::default();
    let mut group = c.benchmark_group("E11/exploration");
    for name in ["sb", "mp", "lb", "corr"] {
        let p = corpus_program(name);
        group.bench_function(format!("sc/{name}"), |b| {
            b.iter(|| {
                ProgramExplorer::new(black_box(&p))
                    .behaviours(&opts)
                    .value
                    .len()
            })
        });
        group.bench_function(format!("tso/{name}"), |b| {
            b.iter(|| {
                let model = TsoModel::new(black_box(&p));
                ModelExplorer::new(&model).behaviours(&opts).value.len()
            })
        });
    }
    group.finish();
}

fn tso_explained(c: &mut Criterion) {
    let opts = ExploreOptions::default();
    let sb = corpus_program("sb");
    c.bench_function("E11/explain_sb_depth3", |b| {
        b.iter(|| {
            let e = explain_tso(black_box(&sb), 3, &opts);
            assert!(e.relaxed && e.explained);
            assert!(e.tso.contains(&vec![Value::new(0), Value::new(0)]));
            e.closure_size
        })
    });
    let mp = corpus_program("mp");
    c.bench_function("E11/explain_mp_depth2", |b| {
        b.iter(|| {
            let e = explain_tso(black_box(&mp), 2, &opts);
            assert!(!e.relaxed && e.explained);
            e.closure_size
        })
    });
}

fn tso_state_space(c: &mut Criterion) {
    let opts = ExploreOptions::default();
    let p = corpus_program("iriw");
    c.bench_function("E11/tso_states_iriw", |b| {
        b.iter(|| {
            let model = TsoModel::new(black_box(&p));
            ModelExplorer::new(&model).count_reachable_states(&opts)
        })
    });
}

criterion_group! {
    name = tso;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = tso_vs_sc_exploration, tso_explained, tso_state_space
}
criterion_main!(tso);
