//! State interning: compact ids for exploration states, and the fast
//! hashing the id tables are built on.
//!
//! Both explorers spend their time probing memo / visited tables keyed
//! on whole states. This module gives them the two ingredients that make
//! those probes cheap:
//!
//! * [`FxHasher`] — a dependency-free port of the Firefox/rustc
//!   rotate-multiply hash. It is not DoS-resistant (irrelevant here: the
//!   keys are machine states, not attacker-controlled input) and is an
//!   order of magnitude cheaper than the default SipHash on the short
//!   word-buffer keys the explorers use.
//! * [`StateInterner`] — an arena plus open-addressing table that maps
//!   each distinct state to a dense `u32` id, caching every key's hash
//!   so rehashing on growth never touches the keys again. Once a state
//!   has an id, every downstream structure (behaviour memos, race
//!   visited sets, count memos) keys on the id instead of the state.
//!
//! [`IdMap`] and [`ScratchPool`] are the two small companions: a dense
//! id-indexed map for memo tables, and a recycling pool for the
//! per-visit move buffers of the DFS engines.

use std::cell::Cell;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The multiplier of the rotate-multiply hash (the fractional bits of
/// the golden ratio, as used by rustc's FxHash).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A dependency-free FxHash-style hasher: `hash = (hash rol 5 ^ word) *
/// seed` per input word. Fast on the short fixed-shape keys the
/// explorers produce (word-buffer states, small tuples); not for
/// attacker-controlled input.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// A `HashMap` hashed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// A `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hashes one value with [`FxHasher`] (the reusable-hash entry: compute
/// once, use for both shard selection and table probing).
#[inline]
#[must_use]
pub fn fx_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// Sentinel for an empty probe slot.
const EMPTY: u32 = u32::MAX;

/// An interner over exploration states: an arena of keys plus an
/// open-addressing probe table, handing out dense `u32` ids in
/// first-seen order.
///
/// Every key's hash is cached (`hashes[id]`), so growth rehashes the
/// probe table from 8-byte hashes without re-reading the keys, and
/// probes compare hashes before keys, touching key memory only on a
/// (rare) full-hash collision or genuine hit.
///
/// # Example
///
/// ```
/// use transafety_interleaving::intern::StateInterner;
/// let mut it: StateInterner<Vec<u32>> = StateInterner::new();
/// let (a, fresh_a) = it.intern(vec![1, 2]);
/// let (b, fresh_b) = it.intern_ref(&vec![1, 2]);
/// assert_eq!((a, fresh_a, b, fresh_b), (0, true, 0, false));
/// assert_eq!(it.get(a), &vec![1, 2]);
/// assert_eq!(it.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct StateInterner<K> {
    keys: Vec<K>,
    hashes: Vec<u64>,
    table: Vec<u32>,
    mask: usize,
    // Probe accounting for the observability layer (`Cell`, not
    // atomics: interners are either thread-local or mutex-guarded, so
    // they are `Send` but never shared unsynchronised). Growth rehashes
    // are not counted — the stats describe lookup/insert traffic only.
    probes: Cell<u64>,
    hits: Cell<u64>,
    collisions: Cell<u64>,
}

impl<K> Default for StateInterner<K> {
    fn default() -> Self {
        StateInterner {
            keys: Vec::new(),
            hashes: Vec::new(),
            table: Vec::new(),
            mask: 0,
            probes: Cell::new(0),
            hits: Cell::new(0),
            collisions: Cell::new(0),
        }
    }
}

impl<K: Hash + Eq> StateInterner<K> {
    /// An empty interner (allocates lazily on first insert).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct interned keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Is the interner empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The key of an id handed out by this interner.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this interner.
    #[must_use]
    pub fn get(&self, id: u32) -> &K {
        &self.keys[id as usize]
    }

    /// All interned keys, indexable by id.
    #[must_use]
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// Consumes the interner, returning the keys in id order (used by
    /// the sharded graph builder's dense compaction).
    #[must_use]
    pub fn into_keys(self) -> Vec<K> {
        self.keys
    }

    /// The id of `key`, if already interned.
    #[must_use]
    pub fn lookup(&self, key: &K) -> Option<u32> {
        if self.table.is_empty() {
            return None;
        }
        self.find_slot(fx_hash(key), key).ok()
    }

    /// Interns an owned key: its id, and `true` when it was new.
    pub fn intern(&mut self, key: K) -> (u32, bool) {
        let hash = fx_hash(&key);
        self.reserve_one();
        match self.find_slot(hash, &key) {
            Ok(id) => (id, false),
            Err(slot) => (self.insert_at(slot, hash, key), true),
        }
    }

    /// Interns by reference-first lookup: the key is cloned only when it
    /// is actually new, never on a probe that hits.
    pub fn intern_ref(&mut self, key: &K) -> (u32, bool)
    where
        K: Clone,
    {
        self.intern_hashed_ref(fx_hash(key), key)
    }

    /// [`intern_ref`](StateInterner::intern_ref) with a caller-supplied
    /// hash (which **must** be `fx_hash(key)`): lets sharded callers
    /// hash once for both shard selection and the probe.
    pub fn intern_hashed_ref(&mut self, hash: u64, key: &K) -> (u32, bool)
    where
        K: Clone,
    {
        debug_assert_eq!(hash, fx_hash(key), "caller-supplied hash mismatch");
        self.reserve_one();
        match self.find_slot(hash, key) {
            Ok(id) => (id, false),
            Err(slot) => (self.insert_at(slot, hash, key.clone()), true),
        }
    }

    /// The home slot of a hash. A rotate-multiply hash mixes *upward*:
    /// its low bits see only a few key bits, so masking them (the usual
    /// `hash & mask`) clusters near-identical states — successive
    /// exploration states differing in one word — into shared probe
    /// chains. Index from the top bits instead, where the final
    /// multiply has diffused every input bit.
    #[inline]
    fn home_slot(&self, hash: u64) -> usize {
        (hash >> (64 - self.table.len().trailing_zeros())) as usize
    }

    /// Finds `key`'s id (`Ok`) or the empty slot where it belongs
    /// (`Err`). The table must be non-empty.
    fn find_slot(&self, hash: u64, key: &K) -> Result<u32, usize> {
        self.probes.set(self.probes.get() + 1);
        let mut i = self.home_slot(hash);
        loop {
            let slot = self.table[i];
            if slot == EMPTY {
                return Err(i);
            }
            let id = slot as usize;
            if self.hashes[id] == hash && &self.keys[id] == key {
                self.hits.set(self.hits.get() + 1);
                return Ok(slot);
            }
            self.collisions.set(self.collisions.get() + 1);
            i = (i + 1) & self.mask;
        }
    }

    fn insert_at(&mut self, slot: usize, hash: u64, key: K) -> u32 {
        let id = u32::try_from(self.keys.len()).expect("more than u32::MAX - 1 interned states");
        assert!(id != EMPTY, "interner id space exhausted");
        self.table[slot] = id;
        self.keys.push(key);
        self.hashes.push(hash);
        id
    }

    /// This interner's probe statistics so far (see [`InternStats`]).
    #[must_use]
    pub fn probe_stats(&self) -> InternStats {
        InternStats {
            probes: self.probes.get(),
            hits: self.hits.get(),
            collisions: self.collisions.get(),
            keys: self.keys.len() as u64,
            slots: self.table.len() as u64,
        }
    }

    /// Grows the probe table when the next insert would push the load
    /// factor past 7/8 (ids and cached hashes are stable; only the
    /// probe slots are rebuilt).
    fn reserve_one(&mut self) {
        let cap = self.table.len();
        if self.keys.len() + 1 + (cap >> 3) <= cap {
            return;
        }
        let new_cap = (cap * 2).max(16);
        self.table = vec![EMPTY; new_cap];
        self.mask = new_cap - 1;
        for (id, &hash) in self.hashes.iter().enumerate() {
            let mut i = (hash >> (64 - new_cap.trailing_zeros())) as usize;
            while self.table[i] != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.table[i] = id as u32;
        }
    }
}

/// A [`StateInterner`]'s probe-table statistics, harvested by the
/// observability layer (see
/// [`ExploreMetrics::record_intern`](crate::metrics::ExploreMetrics::record_intern)).
/// `probes` counts probe sequences (one per lookup or insert), `hits`
/// the ones that found the key, `collisions` the occupied slots
/// stepped past; `keys / slots` is the load factor. Sums of
/// `InternStats` across interners stay meaningful — all fields are
/// plain totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Probe sequences started (lookups + inserts).
    pub probes: u64,
    /// Probes that found their key already interned.
    pub hits: u64,
    /// Occupied slots stepped past on mismatching entries.
    pub collisions: u64,
    /// Distinct keys interned.
    pub keys: u64,
    /// Probe-table capacity in slots.
    pub slots: u64,
}

impl InternStats {
    /// Field-wise sum (for aggregating shard stats).
    #[must_use]
    pub fn merged(self, other: InternStats) -> InternStats {
        InternStats {
            probes: self.probes + other.probes,
            hits: self.hits + other.hits,
            collisions: self.collisions + other.collisions,
            keys: self.keys + other.keys,
            slots: self.slots + other.slots,
        }
    }
}

/// A dense map from interner ids to values (the id-keyed replacement
/// for the explorers' `HashMap<State, V>` memo tables).
#[derive(Debug, Clone)]
pub struct IdMap<V> {
    slots: Vec<Option<V>>,
}

impl<V> Default for IdMap<V> {
    fn default() -> Self {
        IdMap { slots: Vec::new() }
    }
}

impl<V> IdMap<V> {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The value stored for `id`, if any.
    #[must_use]
    pub fn get(&self, id: u32) -> Option<&V> {
        self.slots.get(id as usize).and_then(Option::as_ref)
    }

    /// Stores `value` for `id` (replacing any previous value).
    pub fn insert(&mut self, id: u32, value: V) {
        let i = id as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        self.slots[i] = Some(value);
    }
}

/// A recycling pool for the per-visit move buffers of recursive DFS
/// engines: `take` a cleared buffer at every visit, `put` it back when
/// the visit's children are done, and the steady state allocates
/// nothing (the pool holds one buffer per live recursion depth).
#[derive(Debug)]
pub struct ScratchPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> Default for ScratchPool<T> {
    fn default() -> Self {
        ScratchPool { free: Vec::new() }
    }
}

impl<T> ScratchPool<T> {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A cleared buffer (recycled when one is available).
    #[must_use]
    pub fn take(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, mut buf: Vec<T>) {
        buf.clear();
        self.free.push(buf);
    }
}

/// The result of an interning self-audit: a lockstep walk of the
/// compact engine against the uncompressed reference representation
/// (see each explorer's `audit_intern`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternAudit {
    /// Distinct states visited by the lockstep walk.
    pub states: usize,
    /// Did `encode → decode` round-trip on every visited state?
    pub roundtrips: bool,
    /// Did interned-id equality coincide with structural reference-state
    /// equality on every visited state (the encoding neither conflates
    /// distinct states nor splits equal ones)?
    pub bijective: bool,
    /// Was the walk cut short by the caller's state cap? (The flags
    /// above then cover only the visited prefix.)
    pub capped: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_dedups_and_preserves_first_seen_order() {
        let mut it: StateInterner<u64> = StateInterner::new();
        // enough keys to force several growths
        for round in 0..3 {
            for k in 0..1000u64 {
                let (id, fresh) = it.intern(k * 7);
                assert_eq!(id as u64, k, "round {round}");
                assert_eq!(fresh, round == 0, "round {round}");
            }
        }
        assert_eq!(it.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(*it.get(k as u32), k * 7);
            assert_eq!(it.lookup(&(k * 7)), Some(k as u32));
        }
        assert_eq!(it.lookup(&3), None);
    }

    #[test]
    fn intern_ref_clones_only_when_new() {
        let mut it: StateInterner<Vec<u32>> = StateInterner::new();
        let key = vec![1, 2, 3];
        assert_eq!(it.intern_ref(&key), (0, true));
        assert_eq!(it.intern_ref(&key), (0, false));
        assert_eq!(it.intern_hashed_ref(fx_hash(&key), &key), (0, false));
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn fx_hash_distinguishes_permutations_and_lengths() {
        // sanity, not cryptanalysis: the word-buffer states the
        // explorers hash must not collide on trivial rearrangements
        let h = |v: &Vec<u32>| fx_hash(v);
        assert_ne!(h(&vec![1, 2]), h(&vec![2, 1]));
        assert_ne!(h(&vec![0]), h(&vec![0, 0]));
        assert_ne!(h(&vec![]), h(&vec![0]));
    }

    #[test]
    fn fx_hasher_write_handles_unaligned_tails() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        b.write(&[9]);
        // same chunking rule either way for the 8-byte prefix + 1 tail
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn id_map_round_trips() {
        let mut m: IdMap<&str> = IdMap::new();
        assert!(m.get(5).is_none());
        m.insert(5, "five");
        m.insert(0, "zero");
        assert_eq!(m.get(5), Some(&"five"));
        assert_eq!(m.get(0), Some(&"zero"));
        assert!(m.get(1).is_none());
    }

    #[test]
    fn scratch_pool_recycles_cleared_buffers() {
        let mut pool: ScratchPool<u32> = ScratchPool::new();
        let mut a = pool.take();
        a.extend([1, 2, 3]);
        let cap = a.capacity();
        pool.put(a);
        let b = pool.take();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "the allocation was reused");
    }
}
