//! Round-trip property tests for the verdict cache (ISSUE satellite):
//! a probe for the *same program modulo whitespace, comments-free
//! reformatting and consistent renaming* must hit, and a probe under a
//! *different model or options fingerprint* must never hit.
//!
//! The normalisation contract has two halves: the parser interns
//! location/monitor names in first-appearance order (so spelling and
//! layout vanish at parse time), and `transafety_serve::normalise`
//! renumbers registers in first-appearance order (the parser maps
//! `rN` to index `N` verbatim). The tests drive both halves over
//! handcrafted renamings, the whole litmus corpus, and seeded random
//! programs.

use transafety::lang::parse_program;
use transafety::lang::Program;
use transafety::traces::MemoryModelKind;
use transafety_litmus::{corpus, random_program, GeneratorConfig};
use transafety_serve::{normalise, CacheEntry, CacheKey, CacheLookup, VerdictCache};

fn norm(src: &str) -> Program {
    normalise(&parse_program(src).expect(src).program)
}

fn fingerprint(model: MemoryModelKind, max_actions: usize, por: bool) -> String {
    format!(
        "model={};domain=0,1;max_actions={max_actions};max_tau=4096;por={por}",
        model.as_str()
    )
}

#[test]
fn renamed_and_reformatted_programs_share_a_key() {
    // (original, consistently renamed + reformatted) pairs: locations,
    // registers, monitors all renamed; whitespace and layout mangled.
    let pairs = [
        (
            "x := 1; || r0 := x; print r0;",
            "  y:=1;\n||\n\tr7 := y;\n\tprint r7;  ",
        ),
        (
            "lock m; a := 1; unlock m; || lock m; r0 := a; unlock m; print r0;",
            "lock mu; shared := 1; unlock mu; || lock mu; r9 := shared; unlock mu; print r9;",
        ),
        (
            "volatile v; v := 1; || r1 := v; if (r1 == 1) print r1; else skip;",
            "volatile w;\nw := 1;\n||\nr5 := w;\nif (r5 == 1)\n  print r5;\nelse\n  skip;",
        ),
        (
            "x := 1; y := 2; || r0 := x; r1 := y; while (r0 != 1) r0 := x; print r1;",
            "p := 1; q := 2; || r4 := p; r2 := q; while (r4 != 1) r4 := p; print r2;",
        ),
    ];
    for (a_src, b_src) in pairs {
        let (a, b) = (norm(a_src), norm(b_src));
        assert_eq!(a, b, "{a_src:?} vs {b_src:?} must normalise identically");
        let fp = fingerprint(MemoryModelKind::Sc, 32, true);
        assert_eq!(CacheKey::new(&a, &fp), CacheKey::new(&b, &fp));
    }
}

#[test]
fn distinct_programs_get_distinct_keys() {
    // Renaming that changes *structure* (register aliasing, different
    // location wiring) must not collapse.
    let distinct = [
        "r0 := x; r1 := y;",
        "r0 := x; r0 := y;",
        "r0 := x; r1 := x;",
        "x := 1; || r0 := x; print r0;",
        "x := 1; || r0 := y; print r0;",
    ];
    let fp = fingerprint(MemoryModelKind::Sc, 32, true);
    let keys: Vec<CacheKey> = distinct
        .iter()
        .map(|s| CacheKey::new(&norm(s), &fp))
        .collect();
    for i in 0..keys.len() {
        for j in i + 1..keys.len() {
            assert_ne!(keys[i], keys[j], "{:?} vs {:?}", distinct[i], distinct[j]);
        }
    }
}

#[test]
fn corpus_and_random_programs_display_round_trip_to_the_same_key() {
    // The canonical rendering (`Program`'s `Display`) is itself a
    // whitespace/renaming variant of the source — reparsing it must
    // land on the same key, for every corpus program and a swarm of
    // generated ones.
    let fp = fingerprint(MemoryModelKind::Sc, 32, true);
    let mut programs: Vec<Program> = corpus()
        .iter()
        .map(|l| parse_program(l.source).expect(l.name).program)
        .collect();
    let config = GeneratorConfig::default();
    programs.extend((0..64).map(|seed| random_program(seed, &config)));
    for p in &programs {
        let n = normalise(p);
        let reparsed = normalise(
            &parse_program(&n.to_string())
                .expect("canonical text reparses")
                .program,
        );
        assert_eq!(n, reparsed, "display round-trip is key-stable");
        assert_eq!(CacheKey::new(&n, &fp), CacheKey::new(&reparsed, &fp));
    }
}

#[test]
fn differing_model_or_options_never_hit() {
    // Full-stack check through the disk cache: store under one
    // fingerprint, probe under every other — always a miss, for every
    // corpus program.
    let dir = std::env::temp_dir().join(format!(
        "transafety-serve-cache-prop-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = VerdictCache::open(&dir).expect("cache dir");
    let stored_fp = fingerprint(MemoryModelKind::Sc, 32, true);
    let other_fps = [
        fingerprint(MemoryModelKind::Tso, 32, true),
        fingerprint(MemoryModelKind::Pso, 32, true),
        fingerprint(MemoryModelKind::Sc, 64, true),
        fingerprint(MemoryModelKind::Sc, 32, false),
    ];
    for l in corpus() {
        let p = normalise(&parse_program(l.source).expect(l.name).program);
        let canonical = p.to_string();
        let key = CacheKey::new(&p, &stored_fp);
        cache
            .store(
                key,
                &CacheEntry {
                    program: canonical.clone(),
                    fingerprint: stored_fp.clone(),
                    verdict: "racy".to_owned(),
                    behaviours: 1,
                    behaviours_complete: true,
                    reachable_states: 1,
                },
            )
            .expect("store");
        assert!(
            matches!(cache.load(key, &canonical, &stored_fp), CacheLookup::Hit(_)),
            "{}: exact probe hits",
            l.name
        );
        for fp in &other_fps {
            // Different options mean a different key; and even a
            // forced probe of the stored slot with the wrong
            // fingerprint verifies as a miss, never a hit.
            let other_key = CacheKey::new(&p, fp);
            assert_ne!(
                other_key, key,
                "{}: fingerprint is part of the address",
                l.name
            );
            assert!(
                !matches!(cache.load(key, &canonical, fp), CacheLookup::Hit(_)),
                "{}: wrong-fingerprint probe must never hit",
                l.name
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
