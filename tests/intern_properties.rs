//! Property tests for the interned compact state representation: across
//! randomly generated programs, the compact encoding must round-trip
//! (encode→decode is the identity on every reachable state), interned-id
//! equality must coincide with structural state equality (the encoding
//! is a bijection on the reachable space), and the interned engines must
//! produce exactly the same verdicts as the retained pre-interning
//! reference engines.
//!
//! The generator is the repository's own deterministic litmus generator
//! (one seed per case, so failures reproduce exactly); no external
//! property-testing dependency is used.

use transafety::interleaving::{BudgetGuard, Explorer};
use transafety::lang::{extract_traceset, ExploreOptions, ExtractOptions, ProgramExplorer};
use transafety::litmus::{random_program, GeneratorConfig};
use transafety::traces::Domain;

/// One config per flavour of generated program: unconstrained (racy),
/// lock-disciplined (DRF by construction), and volatile-synchronised.
fn configs() -> Vec<GeneratorConfig> {
    vec![
        GeneratorConfig::default(),
        GeneratorConfig::drf(),
        GeneratorConfig::with_volatiles(),
    ]
}

/// Encode→decode round-trips and id/structural-equality agreement on
/// every reachable state of 200 generated programs (the direct
/// program-state engine).
#[test]
fn program_state_interning_is_bijective_on_generated_corpus() {
    let opts = ExploreOptions::default();
    let configs = configs();
    let mut audited = 0usize;
    let mut total_states = 0usize;
    for seed in 0..200u64 {
        let config = &configs[(seed % configs.len() as u64) as usize];
        let p = random_program(seed, config);
        let ex = ProgramExplorer::new(&p);
        let audit = ex.audit_intern(&opts, 20_000);
        assert!(
            audit.roundtrips,
            "encode/decode round-trip failed for seed {seed}"
        );
        assert!(
            audit.bijective,
            "interned-id equality diverged from structural equality for seed {seed}"
        );
        audited += 1;
        total_states += audit.states;
    }
    assert_eq!(audited, 200);
    assert!(
        total_states > audited,
        "the corpus should exercise non-trivial state spaces"
    );
}

/// The same bijection properties along the traceset route: extract
/// `[P]` and audit the interleaving explorer's compact encoding.
#[test]
fn traceset_state_interning_is_bijective_on_generated_corpus() {
    let domain = Domain::zero_to(2);
    let configs = configs();
    for seed in (0..200u64).step_by(5) {
        let config = &configs[(seed % configs.len() as u64) as usize];
        let p = random_program(seed, config);
        let e = extract_traceset(&p, &domain, &ExtractOptions::default());
        if e.truncated {
            continue; // bounded extraction: nothing to audit exactly
        }
        let ex = Explorer::new(&e.traceset);
        let audit = ex.audit_intern(50_000);
        assert!(
            audit.roundtrips,
            "traceset-route round-trip failed for seed {seed}"
        );
        assert!(
            audit.bijective,
            "traceset-route bijection failed for seed {seed}"
        );
    }
}

/// The interned engine and the pre-interning reference engine agree
/// bit-for-bit: same behaviour sets, same completeness flags, same
/// state-visit counts, same race verdicts and witnesses.
#[test]
fn interned_engine_matches_reference_on_generated_corpus() {
    let configs = configs();
    for seed in (0..200u64).step_by(4) {
        let config = &configs[(seed % configs.len() as u64) as usize];
        let p = random_program(seed, config);
        let ex = ProgramExplorer::new(&p);
        for por in [true, false] {
            let opts = ExploreOptions {
                por,
                ..ExploreOptions::default()
            };
            let b_new = ex.behaviours_governed(&opts, &BudgetGuard::unlimited());
            let b_ref = ex.behaviours_reference_governed(&opts, &BudgetGuard::unlimited());
            assert_eq!(
                b_new, b_ref,
                "behaviours diverged for seed {seed} por={por}"
            );
            let w_new = ex.race_witness_governed(&opts, &BudgetGuard::unlimited());
            let w_ref = ex.race_witness_reference_governed(&opts, &BudgetGuard::unlimited());
            match (&w_new, &w_ref) {
                (Some(a), Some(b)) => assert_eq!(
                    a.execution, b.execution,
                    "race witnesses diverged for seed {seed} por={por}"
                ),
                (None, None) => {}
                _ => panic!("race verdicts diverged for seed {seed} por={por}"),
            }
        }
    }
}
