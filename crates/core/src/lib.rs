//! # transafety — safe optimisations for shared-memory concurrent programs
//!
//! An executable reproduction of Ševčík, *Safe Optimisations for
//! Shared-Memory Concurrent Programs* (PLDI 2011): the language
//! independent trace semantics, the semantic **elimination** and
//! **reordering** transformation classes, the DRF-guarantee and
//! out-of-thin-air theorems as bounded decision procedures, the §6
//! imperative language with its syntactic transformations, and a TSO
//! machine for the §8 connection.
//!
//! The crate is a facade: each subsystem lives in its own crate and is
//! re-exported here as a module.
//!
//! | module | contents |
//! |---|---|
//! | [`traces`] | actions, traces, wildcard traces, tracesets (§3) |
//! | [`interleaving`] | interleavings, executions, happens-before, DRF (§3) |
//! | [`transform`] | semantic eliminations & reorderings, unelimination, origins (§4–§5) |
//! | [`lang`] | the §6 language: AST, parser, small-step semantics, explorer |
//! | [`syntactic`] | the Fig. 10/11 rewrite rules and the Fig. 9 engine (§6.1) |
//! | [`checker`] | Theorems 1–5 as decision procedures on concrete programs |
//! | [`tso`] | store-buffer machine and the §8 "TSO is explained" check |
//! | [`litmus`] | the program corpus and the random workload generator |
//! | [`fuzz`] | differential refinement fuzzing: pipelines, oracle, shrinker, soak |
//!
//! # Quickstart
//!
//! Verify the DRF guarantee for a redundant-read elimination found by
//! the syntactic engine:
//!
//! ```
//! use transafety::checker::{check_rewrite, drf_guarantee, Correspondence, DrfVerdict};
//! use transafety::lang::parse_program;
//! use transafety::syntactic::elimination_rewrites;
//! use transafety::Analysis;
//!
//! let original = parse_program(
//!     "lock m; r1 := x; r2 := x; print r2; unlock m; || lock m; x := 1; unlock m;",
//! )?.program;
//! let opts = Analysis::new();
//! for rewrite in elimination_rewrites(&original) {
//!     // Lemma 4: the rewrite is a semantic elimination …
//!     assert!(matches!(check_rewrite(&original, &rewrite, &opts),
//!         Correspondence::Verified { .. }));
//!     // … and Theorem 3: the DRF guarantee holds for it.
//!     assert_eq!(drf_guarantee(&rewrite.result, &original, &opts), DrfVerdict::Holds);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use transafety_checker as checker;
pub use transafety_interleaving as interleaving;

pub use transafety_checker::{Analysis, AnalysisReport, Verdict};
pub use transafety_fuzz as fuzz;
pub use transafety_interleaving::available_jobs;
pub use transafety_interleaving::{
    Budget, BudgetBound, CancelToken, Completeness, TruncationReason,
};
pub use transafety_lang as lang;
pub use transafety_litmus as litmus;
pub use transafety_serve as serve;
pub use transafety_syntactic as syntactic;
pub use transafety_traces as traces;
pub use transafety_traces::MemoryModelKind;
pub use transafety_transform as transform;
pub use transafety_tso as tso;
