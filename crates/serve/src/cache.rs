//! The disk-backed, content-addressed verdict cache.
//!
//! A serve deployment sees the same programs again and again (CI
//! re-runs, fleets of identical clients), and a complete analysis
//! verdict is a pure function of the **normalised program** and the
//! semantic options it ran under. The cache keys on exactly that
//! function's domain:
//!
//! * the program is normalised by *parsing* plus a register-renumber
//!   pass ([`normalise`]) — the parser interns location and monitor
//!   names in order of first appearance (so whitespace, comments and
//!   consistent location/monitor renamings collapse already), while
//!   register names `rN` keep their numeral, so [`normalise`]
//!   renumbers registers in order of first appearance too; the key is
//!   the interner's [`fx_hash`] of the normalised AST;
//! * the semantic options (memory model, read-value domain, action
//!   fuel, τ bound, reduction toggle) are folded into a human-readable
//!   fingerprint string that is hashed alongside and stored for exact
//!   verification — differing options can never alias.
//!
//! Crash safety is by construction, not by fsck:
//!
//! * **atomic publication** — entries are written to a temp file in the
//!   cache directory and `rename(2)`d into place, so a reader sees the
//!   whole entry or no entry, never a torn write;
//! * **checksummed payloads** — every entry carries an FxHash checksum
//!   of its payload; a corrupt entry (bit rot, a crash mid-`rename` on
//!   exotic filesystems, hostile tampering) fails the checksum;
//! * **quarantine, never trust, never die** — a corrupt entry is
//!   renamed to `<key>.corrupt` (kept for post-mortems) and reported as
//!   a miss, so the verdict is recomputed; corruption can cost work,
//!   never correctness, and can never crash the server.
//!
//! Only **complete, fault-free** results are admitted: a truncated or
//! panic-degraded run reports `unknown` and is recomputed next time —
//! caching it would launder a budget artefact into a persistent answer.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use transafety_interleaving::intern::fx_hash;
use transafety_lang::{Cond, Operand, Program, Reg, Stmt};

use crate::proto::{json_escape, parse_flat_object, JsonValue};

/// Completes the parser's normalisation: renumbers registers in order
/// of first appearance (program order, thread by thread). The parser
/// already interns location and monitor *names* by first appearance,
/// but spells register `rN` as index `N` verbatim — so without this
/// pass, `r0`/`r7` renamings of the same program would key differently.
/// Locations, monitors, constants and control structure pass through
/// untouched: those are semantic, not spelling.
#[must_use]
pub fn normalise(program: &Program) -> Program {
    let mut map: std::collections::HashMap<Reg, Reg> = std::collections::HashMap::new();
    let mut rename = |r: Reg| -> Reg {
        let next = Reg::new(u32::try_from(map.len()).unwrap_or(u32::MAX));
        *map.entry(r).or_insert(next)
    };
    fn operand(o: Operand, rename: &mut impl FnMut(Reg) -> Reg) -> Operand {
        match o {
            Operand::Reg(r) => Operand::Reg(rename(r)),
            Operand::Const(v) => Operand::Const(v),
        }
    }
    fn cond(c: Cond, rename: &mut impl FnMut(Reg) -> Reg) -> Cond {
        match c {
            Cond::Eq(a, b) => Cond::Eq(operand(a, rename), operand(b, rename)),
            Cond::Ne(a, b) => Cond::Ne(operand(a, rename), operand(b, rename)),
        }
    }
    fn stmt(s: &Stmt, rename: &mut impl FnMut(Reg) -> Reg) -> Stmt {
        match s {
            Stmt::Store { loc, src } => Stmt::Store {
                loc: *loc,
                src: rename(*src),
            },
            Stmt::Load { dst, loc } => Stmt::Load {
                dst: rename(*dst),
                loc: *loc,
            },
            Stmt::Move { dst, src } => {
                // Source before destination: reads of a register occur
                // (in spelled order) before the write's new binding.
                let src = operand(*src, rename);
                Stmt::Move {
                    dst: rename(*dst),
                    src,
                }
            }
            Stmt::Lock(m) => Stmt::Lock(*m),
            Stmt::Unlock(m) => Stmt::Unlock(*m),
            Stmt::Skip => Stmt::Skip,
            Stmt::Print(r) => Stmt::Print(rename(*r)),
            Stmt::Block(stmts) => Stmt::Block(stmts.iter().map(|s| stmt(s, rename)).collect()),
            Stmt::If {
                cond: c,
                then_branch,
                else_branch,
            } => Stmt::If {
                cond: cond(*c, rename),
                then_branch: Box::new(stmt(then_branch, rename)),
                else_branch: Box::new(stmt(else_branch, rename)),
            },
            Stmt::While { cond: c, body } => Stmt::While {
                cond: cond(*c, rename),
                body: Box::new(stmt(body, rename)),
            },
        }
    }
    Program::new(
        program
            .threads()
            .iter()
            .map(|thread| thread.iter().map(|s| stmt(s, &mut rename)).collect())
            .collect(),
    )
}

/// Magic + version tag on every entry's first line; bump on layout
/// changes so old caches read as misses, not as garbage.
const ENTRY_MAGIC: &str = "drfcheck-cache-v1";

/// A 64-bit content address: the FxHash of the normalised program AST
/// combined with the options fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(u64);

impl CacheKey {
    /// Computes the key for a program (pass it through [`normalise`]
    /// first — the server does) under an options fingerprint.
    #[must_use]
    pub fn new(program: &Program, fingerprint: &str) -> Self {
        CacheKey(fx_hash(&(program, fingerprint)))
    }

    /// The entry file name for this key.
    #[must_use]
    pub fn file_name(self) -> String {
        format!("{:016x}.entry", self.0)
    }
}

/// The cached result of one complete analysis: everything a response
/// needs, plus the full key material (canonical program text and
/// fingerprint) so a 64-bit hash collision verifies as a miss instead
/// of serving the wrong program's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// Canonical rendering of the normalised program (`Program`'s
    /// `Display`, which reparses to the identical AST).
    pub program: String,
    /// The options fingerprint the verdict was computed under.
    pub fingerprint: String,
    /// `racy` / `drf_proven` (cached entries are complete runs, so
    /// `unknown` never appears here).
    pub verdict: String,
    /// Number of distinct behaviours.
    pub behaviours: u64,
    /// Whether the behaviour set was exact (it always is for a cached
    /// complete run; kept explicit for the response contract).
    pub behaviours_complete: bool,
    /// Distinct reachable model states.
    pub reachable_states: u64,
}

impl CacheEntry {
    fn payload(&self) -> String {
        let mut s = String::with_capacity(self.program.len() + 128);
        s.push('{');
        let _ = write!(s, "\"program\":\"{}\"", json_escape(&self.program));
        let _ = write!(s, ",\"fingerprint\":\"{}\"", json_escape(&self.fingerprint));
        let _ = write!(s, ",\"verdict\":\"{}\"", json_escape(&self.verdict));
        let _ = write!(s, ",\"behaviours\":{}", self.behaviours);
        let _ = write!(s, ",\"behaviours_complete\":{}", self.behaviours_complete);
        let _ = write!(s, ",\"reachable_states\":{}", self.reachable_states);
        s.push('}');
        s
    }

    fn from_payload(payload: &str) -> Result<Self, String> {
        let pairs = parse_flat_object(payload)?;
        let get = |key: &str| -> Result<&JsonValue, String> {
            pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing key {key:?}"))
        };
        let string = |key: &str| -> Result<String, String> {
            get(key)?
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("{key} is not a string"))
        };
        let number = |key: &str| -> Result<u64, String> {
            get(key)?
                .as_u64()
                .ok_or_else(|| format!("{key} is not a non-negative integer"))
        };
        Ok(CacheEntry {
            program: string("program")?,
            fingerprint: string("fingerprint")?,
            verdict: string("verdict")?,
            behaviours: number("behaviours")?,
            behaviours_complete: get("behaviours_complete")?
                .as_bool()
                .ok_or("behaviours_complete is not a boolean")?,
            reachable_states: number("reachable_states")?,
        })
    }
}

/// The outcome of a cache probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheLookup {
    /// Verified hit: checksum passed **and** the stored program text
    /// and fingerprint match the probe exactly.
    Hit(CacheEntry),
    /// No entry (or a same-key entry for different content — a 64-bit
    /// collision — which is treated as absence).
    Miss,
    /// An entry existed but failed its checksum or would not parse; it
    /// was quarantined to `<key>.corrupt` and the caller recomputes.
    Quarantined,
}

/// A directory of checksummed verdict entries with atomic publication.
#[derive(Debug)]
pub struct VerdictCache {
    dir: PathBuf,
    /// Distinguishes concurrent writers' temp files (the pid alone is
    /// not enough: the serve workers share one process).
    tmp_counter: AtomicU64,
}

impl VerdictCache {
    /// Opens (creating if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(VerdictCache {
            dir,
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The directory entries live in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path of `key`'s entry (whether or not it exists).
    #[must_use]
    pub fn entry_path(&self, key: CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Probes the cache for `key`, verifying the stored content against
    /// the probe's `program` rendering and `fingerprint`.
    #[must_use]
    pub fn load(&self, key: CacheKey, program: &str, fingerprint: &str) -> CacheLookup {
        let path = self.entry_path(key);
        let raw = match fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return CacheLookup::Miss,
            // Unreadable (permissions, I/O error): treat as corrupt —
            // quarantine may fail too, but the verdict is recomputed
            // either way.
            Err(_) => return self.quarantine(&path),
        };
        let Some((header, payload)) = raw.split_once('\n') else {
            return self.quarantine(&path);
        };
        let Some(checksum_hex) = header.strip_prefix(ENTRY_MAGIC).map(str::trim) else {
            return self.quarantine(&path);
        };
        let Ok(expected) = u64::from_str_radix(checksum_hex, 16) else {
            return self.quarantine(&path);
        };
        let payload = payload.trim_end_matches('\n');
        if fx_hash(&payload.as_bytes()) != expected {
            return self.quarantine(&path);
        }
        let Ok(entry) = CacheEntry::from_payload(payload) else {
            // Checksum passed but the payload does not parse: only
            // possible if a corrupted file happens to re-checksum,
            // or a version skew slipped past the magic. Quarantine.
            return self.quarantine(&path);
        };
        if entry.program == program && entry.fingerprint == fingerprint {
            CacheLookup::Hit(entry)
        } else {
            CacheLookup::Miss
        }
    }

    /// Publishes `entry` under `key`: temp file, then atomic rename.
    /// Returns the final path (the fault-injection harness uses it to
    /// corrupt entries deterministically).
    pub fn store(&self, key: CacheKey, entry: &CacheEntry) -> io::Result<PathBuf> {
        let payload = entry.payload();
        let checksum = fx_hash(&payload.as_bytes());
        let contents = format!("{ENTRY_MAGIC} {checksum:016x}\n{payload}\n");
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            key.file_name(),
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let path = self.entry_path(key);
        fs::write(&tmp, contents)?;
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(path),
            Err(e) => {
                // Never leave temp droppings behind on a failed publish.
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    fn quarantine(&self, path: &Path) -> CacheLookup {
        let mut quarantined = path.as_os_str().to_owned();
        quarantined.push(".corrupt");
        // Rename failures (another worker already quarantined it, or
        // the file vanished) change nothing: the caller recomputes.
        let _ = fs::rename(path, PathBuf::from(quarantined));
        CacheLookup::Quarantined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::parse_program;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "transafety-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn entry_for(program: &Program, fingerprint: &str) -> CacheEntry {
        CacheEntry {
            program: program.to_string(),
            fingerprint: fingerprint.to_string(),
            verdict: "racy".to_string(),
            behaviours: 3,
            behaviours_complete: true,
            reachable_states: 11,
        }
    }

    #[test]
    fn round_trip_and_verified_hit() {
        let cache = VerdictCache::open(tmp_dir("roundtrip")).unwrap();
        let p = parse_program("x := 1; || r0 := x; print r0;")
            .unwrap()
            .program;
        let key = CacheKey::new(&p, "fp");
        assert_eq!(cache.load(key, &p.to_string(), "fp"), CacheLookup::Miss);
        let entry = entry_for(&p, "fp");
        cache.store(key, &entry).unwrap();
        assert_eq!(
            cache.load(key, &p.to_string(), "fp"),
            CacheLookup::Hit(entry)
        );
        // Same key bits, different fingerprint: verified miss.
        assert_eq!(cache.load(key, &p.to_string(), "other"), CacheLookup::Miss);
    }

    #[test]
    fn corruption_quarantines_and_recovers() {
        let cache = VerdictCache::open(tmp_dir("corrupt")).unwrap();
        let p = parse_program("x := 1; || r0 := x; print r0;")
            .unwrap()
            .program;
        let key = CacheKey::new(&p, "fp");
        let entry = entry_for(&p, "fp");
        let path = cache.store(key, &entry).unwrap();
        // Flip payload bytes without touching the checksum header.
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0xff;
        fs::write(&path, bytes).unwrap();
        assert_eq!(
            cache.load(key, &p.to_string(), "fp"),
            CacheLookup::Quarantined
        );
        assert!(!path.exists(), "corrupt entry renamed away");
        let mut corrupt = path.clone().into_os_string();
        corrupt.push(".corrupt");
        assert!(
            PathBuf::from(corrupt).exists(),
            "quarantined copy kept for post-mortem"
        );
        // Second probe: plain miss; a store repairs the slot.
        assert_eq!(cache.load(key, &p.to_string(), "fp"), CacheLookup::Miss);
        cache.store(key, &entry).unwrap();
        assert_eq!(
            cache.load(key, &p.to_string(), "fp"),
            CacheLookup::Hit(entry)
        );
    }

    #[test]
    fn truncated_and_garbage_entries_quarantine() {
        let cache = VerdictCache::open(tmp_dir("garbage")).unwrap();
        let p = parse_program("x := 1;").unwrap().program;
        let key = CacheKey::new(&p, "fp");
        fs::write(cache.entry_path(key), "not an entry").unwrap();
        assert_eq!(
            cache.load(key, &p.to_string(), "fp"),
            CacheLookup::Quarantined
        );
        fs::write(cache.entry_path(key), format!("{ENTRY_MAGIC} zzzz\n{{}}\n")).unwrap();
        assert_eq!(
            cache.load(key, &p.to_string(), "fp"),
            CacheLookup::Quarantined
        );
    }

    #[test]
    fn renaming_normalisation_shares_a_key() {
        // Same program modulo whitespace + consistent renaming of a
        // location (y for x) AND a register (r7 for r0): parsing
        // normalises the location, `normalise` renumbers the register,
        // so the keys coincide.
        let a = parse_program("x := 1; || r0 := x; print r0;")
            .unwrap()
            .program;
        let b = parse_program("  y:=1;\n||\n  r7 := y;\n  print r7;  ")
            .unwrap()
            .program;
        let (a, b) = (normalise(&a), normalise(&b));
        assert_eq!(a, b, "parse + renumber is the normaliser");
        assert_eq!(CacheKey::new(&a, "fp"), CacheKey::new(&b, "fp"));
        assert_ne!(
            CacheKey::new(&a, "fp").file_name(),
            CacheKey::new(&a, "fp2").file_name(),
            "options are part of the address"
        );
    }

    #[test]
    fn normalise_is_idempotent_and_semantics_preserving() {
        let src = "lock m; a := 1; unlock m; || if (r3 == 0) { r3 := a; print r3; } else skip; while (r2 != 1) r2 := a;";
        let p = parse_program(src).unwrap().program;
        let n = normalise(&p);
        assert_eq!(normalise(&n), n, "idempotent");
        // The canonical rendering reparses to the same normal form.
        let reparsed = parse_program(&n.to_string()).unwrap().program;
        assert_eq!(normalise(&reparsed), n, "Display round-trips");
        // Different register *structure* (one register vs two) must NOT
        // collapse.
        let one = normalise(&parse_program("r0 := x; r0 := y;").unwrap().program);
        let two = normalise(&parse_program("r0 := x; r1 := y;").unwrap().program);
        assert_ne!(one, two, "distinct registers stay distinct");
    }
}
