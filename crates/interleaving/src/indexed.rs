//! A flattened, id-indexed view of a traceset trie.

use std::collections::BTreeMap;

use transafety_traces::{Action, ThreadId, Traceset};

/// An immutable, integer-indexed copy of a [`Traceset`] trie.
///
/// The [`Explorer`](crate::Explorer) needs stable node identities to key
/// its memo tables; this view assigns every trie node a dense `usize` id
/// (the root is id 0).
///
/// # Example
///
/// ```
/// use transafety_traces::{Action, ThreadId, Trace, Traceset};
/// use transafety_interleaving::IndexedTraceset;
/// let mut t = Traceset::new();
/// t.insert(Trace::from_actions([Action::start(ThreadId::new(0))]))?;
/// let ix = IndexedTraceset::new(&t);
/// assert_eq!(ix.node_count(), 2);
/// let next = ix.child(IndexedTraceset::ROOT, &Action::start(ThreadId::new(0)));
/// assert!(next.is_some());
/// # Ok::<(), transafety_traces::TraceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IndexedTraceset {
    children: Vec<BTreeMap<Action, usize>>,
    threads: Vec<ThreadId>,
}

impl IndexedTraceset {
    /// The id of the root node (the empty trace).
    pub const ROOT: usize = 0;

    /// Flattens a traceset into an indexed view.
    #[must_use]
    pub fn new(t: &Traceset) -> Self {
        let mut children: Vec<BTreeMap<Action, usize>> = vec![BTreeMap::new()];
        // Depth-first copy. A trie is a tree, so each cursor position is
        // reached exactly once.
        let mut stack = vec![(t.cursor(), 0usize)];
        while let Some((cursor, id)) = stack.pop() {
            let actions: Vec<Action> = cursor.children().copied().collect();
            for a in actions {
                let child = cursor.step(&a).expect("listed child exists");
                let cid = children.len();
                children.push(BTreeMap::new());
                children[id].insert(a, cid);
                stack.push((child, cid));
            }
        }
        IndexedTraceset {
            children,
            threads: t.threads(),
        }
    }

    /// The number of nodes (member traces) in the trie.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.children.len()
    }

    /// The child of `node` along edge `a`, if present.
    #[must_use]
    pub fn child(&self, node: usize, a: &Action) -> Option<usize> {
        self.children.get(node)?.get(a).copied()
    }

    /// The outgoing edges of `node`.
    pub fn edges(&self, node: usize) -> impl Iterator<Item = (&Action, usize)> + '_ {
        self.children[node].iter().map(|(a, &n)| (a, n))
    }

    /// Returns `true` if `node` has no children.
    #[must_use]
    pub fn is_leaf(&self, node: usize) -> bool {
        self.children[node].is_empty()
    }

    /// The program's threads (entry points), sorted.
    #[must_use]
    pub fn threads(&self) -> &[ThreadId] {
        &self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_traces::{Loc, Trace, Value};

    #[test]
    fn node_count_matches_member_count() {
        let x = Loc::normal(0);
        let mut t = Traceset::new();
        for v in 0..3 {
            t.insert(Trace::from_actions([
                Action::start(ThreadId::new(0)),
                Action::read(x, Value::new(v)),
                Action::write(x, Value::new(v)),
            ]))
            .unwrap();
        }
        let ix = IndexedTraceset::new(&t);
        assert_eq!(ix.node_count(), t.member_count());
        assert_eq!(ix.threads(), &[ThreadId::new(0)]);
    }

    #[test]
    fn walks_agree_with_traceset() {
        let x = Loc::normal(0);
        let mut t = Traceset::new();
        t.insert(Trace::from_actions([
            Action::start(ThreadId::new(1)),
            Action::write(x, Value::new(1)),
        ]))
        .unwrap();
        let ix = IndexedTraceset::new(&t);
        let n1 = ix
            .child(IndexedTraceset::ROOT, &Action::start(ThreadId::new(1)))
            .unwrap();
        let n2 = ix.child(n1, &Action::write(x, Value::new(1))).unwrap();
        assert!(ix.is_leaf(n2));
        assert_eq!(ix.child(n1, &Action::write(x, Value::new(2))), None);
        assert_eq!(ix.edges(IndexedTraceset::ROOT).count(), 1);
    }
}
