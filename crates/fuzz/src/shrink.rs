//! Delta-debugging minimiser for failing (program, pipeline) pairs.
//!
//! Greedy first-improvement search: at each step the minimiser tries
//! every one-step shrink of the program (statement removal, thread
//! removal, control-structure simplification, constant simplification)
//! and then of the pipeline (drop / truncate / halve-pick passes),
//! re-runs the [oracle](crate::oracle) under the per-case budget, and
//! keeps the first candidate on which the failure predicate still
//! holds.  Every accepted step strictly reduces the lexicographic
//! measure (statement count, constant sum, pipeline weight), so the
//! search terminates; a hard attempt cap bounds the oracle re-runs.

use transafety_lang::{Operand, Program, Stmt};
use transafety_traces::Value;

use crate::oracle::{check_pair, CaseReport, OracleConfig, Outcome};
use crate::pipeline::Pipeline;

/// Count the *action-bearing* statements of a program: loads, stores,
/// locks, unlocks and prints — the statements that issue an action in
/// the Fig. 7 semantics.  Register moves and `skip` are trace-invisible
/// (the REGS rule issues no action; the parser inserts moves freely
/// when desugaring constants), and control scaffolding tests registers
/// only, so this is the trace-relevant size of a witness — the measure
/// the ≤ 6-statement acceptance bound is stated over.
#[must_use]
pub fn statement_count(program: &Program) -> usize {
    fn count(s: &Stmt) -> usize {
        match s {
            Stmt::Block(body) => body.iter().map(count).sum(),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => count(then_branch) + count(else_branch),
            Stmt::While { body, .. } => count(body),
            Stmt::Move { .. } | Stmt::Skip => 0,
            Stmt::Store { .. }
            | Stmt::Load { .. }
            | Stmt::Lock(_)
            | Stmt::Unlock(_)
            | Stmt::Print(_) => 1,
        }
    }
    program
        .threads()
        .iter()
        .flat_map(|t| t.iter())
        .map(count)
        .sum()
}

/// All one-step program shrinks: drop a thread, drop a statement at any
/// nesting depth, replace a conditional by one branch, a loop by its
/// body, or a non-zero constant by zero.
#[must_use]
pub fn program_shrinks(program: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    if program.thread_count() > 1 {
        for i in 0..program.thread_count() {
            let mut threads = program.threads().to_vec();
            threads.remove(i);
            out.push(Program::new(threads));
        }
    }
    for t in 0..program.thread_count() {
        for body in list_shrinks(&program.threads()[t]) {
            let mut threads = program.threads().to_vec();
            threads[t] = body;
            out.push(Program::new(threads));
        }
    }
    out
}

fn list_shrinks(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for i in 0..stmts.len() {
        let mut removed = stmts.to_vec();
        removed.remove(i);
        out.push(removed);
        for s in stmt_shrinks(&stmts[i]) {
            let mut replaced = stmts.to_vec();
            replaced[i] = s;
            out.push(replaced);
        }
    }
    out
}

fn stmt_shrinks(s: &Stmt) -> Vec<Stmt> {
    match s {
        Stmt::Block(body) => list_shrinks(body).into_iter().map(Stmt::Block).collect(),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let mut out = vec![(**then_branch).clone(), (**else_branch).clone()];
            for b in stmt_shrinks(then_branch) {
                out.push(Stmt::If {
                    cond: *cond,
                    then_branch: Box::new(b),
                    else_branch: else_branch.clone(),
                });
            }
            for b in stmt_shrinks(else_branch) {
                out.push(Stmt::If {
                    cond: *cond,
                    then_branch: then_branch.clone(),
                    else_branch: Box::new(b),
                });
            }
            out
        }
        Stmt::While { cond, body } => {
            let mut out = vec![(**body).clone()];
            for b in stmt_shrinks(body) {
                out.push(Stmt::While {
                    cond: *cond,
                    body: Box::new(b),
                });
            }
            out
        }
        Stmt::Move { dst, src } => match src {
            Operand::Const(v) if !v.is_default() => vec![Stmt::Move {
                dst: *dst,
                src: Operand::Const(Value::ZERO),
            }],
            _ => Vec::new(),
        },
        _ => Vec::new(),
    }
}

/// The result of a minimisation run.
#[derive(Debug, Clone)]
pub struct Minimised {
    /// The shrunk program.
    pub program: Program,
    /// The shrunk pipeline.
    pub pipeline: Pipeline,
    /// The oracle outcome on the shrunk pair (still failing).
    pub outcome: Outcome,
    /// Accepted shrink steps.
    pub steps: usize,
    /// Oracle runs spent shrinking (accepted + rejected candidates).
    pub attempts: usize,
}

/// Shrink `(program, pipeline)` while `keep` holds of the oracle
/// report, spending at most `max_attempts` oracle re-runs.
///
/// `keep` sees the whole [`CaseReport`], not just the outcome, so a
/// caller can pin the failure mode — e.g. "still a divergence *and*
/// still applies E-WBW" — and the minimiser cannot wander off to a
/// smaller but different failure (a shrink step that removes the
/// interesting rule often leaves some other divergence behind).
///
/// The initial pair must satisfy `keep` (callers check the original
/// failure first); the returned pair always does.
pub fn minimise(
    program: &Program,
    pipeline: &Pipeline,
    config: &OracleConfig,
    keep: impl Fn(&CaseReport) -> bool,
    max_attempts: usize,
) -> Minimised {
    let mut best_program = program.clone();
    let mut best_pipeline = pipeline.clone();
    let mut best_outcome = check_pair(&best_program, &best_pipeline, config).outcome;
    let mut steps = 0usize;
    let mut attempts = 1usize;

    'outer: loop {
        if attempts >= max_attempts {
            break;
        }
        for candidate in program_shrinks(&best_program) {
            if attempts >= max_attempts {
                break 'outer;
            }
            attempts += 1;
            let report = check_pair(&candidate, &best_pipeline, config);
            if keep(&report) {
                best_program = candidate;
                best_outcome = report.outcome;
                steps += 1;
                continue 'outer;
            }
        }
        for candidate in best_pipeline.shrink_candidates() {
            if attempts >= max_attempts {
                break 'outer;
            }
            attempts += 1;
            let report = check_pair(&best_program, &candidate, config);
            if keep(&report) {
                best_pipeline = candidate;
                best_outcome = report.outcome;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }

    Minimised {
        program: best_program,
        pipeline: best_pipeline,
        outcome: best_outcome,
        steps,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::parse_program;
    use transafety_traces::MemoryModelKind;

    #[test]
    fn counts_action_statements_through_nesting() {
        let p = parse_program(
            "if (r0 == 1) { x := r0; print r0; } else skip; while (r1 != 1) r1 := x;",
        )
        .unwrap()
        .program;
        // store + print inside the branch, load inside the loop; the
        // if/while/skip scaffolding and register moves are invisible
        assert_eq!(statement_count(&p), 3);
    }

    #[test]
    fn shrinks_strictly_reduce_the_measure() {
        let p = parse_program("r0 := 3; if (r0 == 1) { x := r0; } else skip; || y := r1;")
            .unwrap()
            .program;
        // termination measure: AST node count, then total constant mass
        fn nodes(s: &Stmt) -> usize {
            match s {
                Stmt::Block(body) => 1 + body.iter().map(nodes).sum::<usize>(),
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => 1 + nodes(then_branch) + nodes(else_branch),
                Stmt::While { body, .. } => 1 + nodes(body),
                _ => 1,
            }
        }
        let measure = |p: &Program| {
            let consts: u64 = p.constants().iter().map(|c| u64::from(c.get())).sum();
            let n: usize = p.threads().iter().flatten().map(nodes).sum();
            (n, consts)
        };
        for cand in program_shrinks(&p) {
            assert!(
                measure(&cand) < measure(&p),
                "candidate did not shrink: {cand}"
            );
        }
    }

    #[test]
    fn minimises_the_overwritten_write_witness() {
        // Start from a padded variant of the E-WBW/TSO divergence and
        // check the minimiser gets it down to the acceptance bound
        // (≤ 6 statements, ≤ 2 passes).
        let p = parse_program(
            "r9 := 7; r0 := 1; r1 := 1; r2 := 2; x := r0; y := r1; x := r2; skip; \
             || r3 := y; r4 := x; if (r4 == 0) print r3;",
        )
        .unwrap()
        .program;
        let config = OracleConfig::for_model(MemoryModelKind::Tso);
        // find a pipeline whose first pass is the E-WBW elimination
        let rewrites = transafety_syntactic::elimination_rewrites(&p);
        let idx = rewrites
            .iter()
            .position(|r| r.rule == transafety_syntactic::RuleName::EWbw)
            .expect("E-WBW applies");
        let pipeline = Pipeline {
            passes: vec![crate::pipeline::Pass {
                set: crate::pipeline::PassSet::Eliminations,
                pick: u32::try_from(idx).unwrap(),
            }],
        };
        let first = check_pair(&p, &pipeline, &config);
        assert!(first.outcome.is_divergence(), "{:?}", first.outcome);
        // pin the rule: the shrunk pair must still diverge *via E-WBW*,
        // not via some other divergence a shrink step leaves behind
        let keeps_ewbw = |r: &CaseReport| {
            r.outcome.is_divergence()
                && r.applied
                    .iter()
                    .any(|p| p.rule == transafety_syntactic::RuleName::EWbw)
        };
        let min = minimise(&p, &pipeline, &config, keeps_ewbw, 2_000);
        assert!(min.outcome.is_divergence());
        let applied = min.pipeline.apply(&min.program);
        assert!(
            applied
                .applied
                .iter()
                .any(|p| p.rule == transafety_syntactic::RuleName::EWbw),
            "minimised witness lost the pinned rule"
        );
        assert!(
            statement_count(&min.program) <= 6,
            "witness still has {} statements:\n{}",
            statement_count(&min.program),
            min.program
        );
        assert!(min.pipeline.len() <= 2);
        assert!(min.steps > 0);
    }
}
