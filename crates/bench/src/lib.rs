//! Shared helpers for the transafety benchmark harness.
//!
//! The benches regenerate the paper's figure/table claims while
//! measuring the checker's performance (the evaluation substrate of this
//! reproduction — see `EXPERIMENTS.md`): `figures` covers E1–E7,
//! `theorems` covers E8–E10, `tso` covers E11 and `scaling` covers E12 and E14.
//!
//! The crate also carries a small self-contained measurement harness
//! (`Criterion`, `Bencher`, [`criterion_group!`], [`criterion_main!`])
//! exposing the subset of the `criterion` API the benches use. The
//! build environment is fully offline, so the external crate cannot be
//! fetched; the shim keeps the bench sources idiomatic and lets a real
//! `criterion` be swapped back in by changing one import line.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

use transafety::lang::Program;
use transafety::litmus::by_name;

/// Parses a corpus program by name (panics on unknown names — benches
/// only use validated corpus entries).
#[must_use]
pub fn corpus_program(name: &str) -> Program {
    by_name(name)
        .unwrap_or_else(|| panic!("unknown corpus entry {name}"))
        .parse()
        .program
}

/// One measured benchmark: name plus per-iteration statistics.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark name (`group/function`).
    pub name: String,
    /// Fastest observed per-iteration time.
    pub min: Duration,
    /// Median per-iteration time over the collected samples.
    pub median: Duration,
}

/// The measurement driver: collects timing samples for each registered
/// benchmark function and prints a summary table at the end of the run.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    results: Vec<Sample>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(800),
            results: Vec::new(),
        }
    }
}

/// Runs closures under timing; handed to benchmark functions.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it as many times as the harness requested for
    /// this sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Registers and immediately measures one benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, mut f: F) {
        let name = name.to_string();
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let per_iter = loop {
            f(&mut b);
            if warm_start.elapsed() >= self.warm_up {
                break b.elapsed.max(Duration::from_nanos(1));
            }
        };
        // Size each sample so the whole measurement fits the budget.
        let budget_per_sample = self.measurement / self.sample_size as u32;
        let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 24) as u64;
        let mut times: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            f(&mut b);
            times.push(b.elapsed / iters as u32);
        }
        times.sort();
        let sample = Sample {
            name: name.clone(),
            min: times[0],
            median: times[times.len() / 2],
        };
        println!(
            "{:<52} {:>12} /iter (min {})",
            name,
            fmt_dur(sample.median),
            fmt_dur(sample.min)
        );
        self.results.push(sample);
    }

    /// Opens a named group; benchmarks registered through it are
    /// prefixed with `name/`.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            prefix: name.to_string(),
        }
    }

    /// Prints the summary table (called by [`criterion_main!`]).
    pub fn print_summary(&self) {
        println!("\n== summary ({} benchmarks) ==", self.results.len());
        for s in &self.results {
            println!("{:<52} {:>12}", s.name, fmt_dur(s.median));
        }
    }

    /// The collected samples, for harnesses that post-process results.
    #[must_use]
    pub fn results(&self) -> &[Sample] {
        &self.results
    }
}

/// A named family of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Registers one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, f: F) {
        let full = format!("{}/{}", self.prefix, name);
        self.c.bench_function(full, f);
    }

    /// Registers one parameterised benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.prefix, id);
        self.c.bench_function(full, |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Criterion-style benchmark id built from a parameter value.
#[derive(Debug)]
pub struct BenchmarkId;

impl BenchmarkId {
    /// Renders the parameter as the benchmark id.
    #[must_use]
    pub fn from_parameter(p: impl Display) -> String {
        p.to_string()
    }

    /// Renders a `function/parameter` benchmark id (mirrors
    /// `criterion::BenchmarkId::new`, which also does not return `Self`
    /// in this shim — ids are plain strings).
    #[must_use]
    #[allow(clippy::new_ret_no_self)]
    pub fn new(function: impl Display, p: impl Display) -> String {
        format!("{function}/{p}")
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
            c.print_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
