//! Scaling benchmarks (E12 of `DESIGN.md`): how the checkers behave as
//! programs grow — the performance evaluation of this reproduction's
//! substrate (the paper itself has no performance section; these sweeps
//! characterise the bounded model checkers it is reproduced on).

use std::hint::black_box;
use transafety_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

use transafety::interleaving::Explorer;
use transafety::lang::{
    extract_traceset, parse_program, ExploreOptions, ExtractOptions, ProgramExplorer,
};
use transafety::litmus::{random_program, GeneratorConfig};
use transafety::traces::Domain;
use transafety::transform::{find_reordering, EliminationOptions};

/// An N-thread store/load chain used for interleaving-growth sweeps.
fn chain_program(threads: usize) -> transafety::lang::Program {
    let mut src = String::new();
    for t in 0..threads {
        if t > 0 {
            src.push_str(" || ");
        }
        src.push_str(&format!("x{t} := 1; r{t} := x{t};"));
    }
    parse_program(&src).unwrap().program
}

fn behaviours_vs_threads(c: &mut Criterion) {
    let opts = ExploreOptions::default();
    let mut group = c.benchmark_group("E12/behaviours_vs_threads");
    for threads in [1usize, 2, 3, 4] {
        let p = chain_program(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &p, |b, p| {
            b.iter(|| {
                ProgramExplorer::new(black_box(p))
                    .behaviours(&opts)
                    .value
                    .len()
            })
        });
    }
    group.finish();
}

fn race_check_vs_statements(c: &mut Criterion) {
    let opts = ExploreOptions::default();
    let mut group = c.benchmark_group("E12/race_check_vs_stmts");
    for stmts in [2usize, 4, 6, 8] {
        let config = GeneratorConfig {
            stmts_per_thread: stmts,
            ..GeneratorConfig::default()
        };
        let programs: Vec<_> = (0..4).map(|s| random_program(s, &config)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(stmts), &programs, |b, ps| {
            b.iter(|| {
                ps.iter()
                    .filter(|p| ProgramExplorer::new(p).is_data_race_free(&opts))
                    .count()
            })
        });
    }
    group.finish();
}

fn extraction_vs_domain(c: &mut Criterion) {
    let p = parse_program("r1 := x; r2 := y; r3 := x; print r3;")
        .unwrap()
        .program;
    let ex = ExtractOptions::default();
    let mut group = c.benchmark_group("E12/extraction_vs_domain");
    for max in [1u32, 2, 4, 8] {
        let d = Domain::zero_to(max);
        group.bench_with_input(BenchmarkId::from_parameter(max + 1), &d, |b, d| {
            b.iter(|| {
                extract_traceset(black_box(&p), d, &ex)
                    .traceset
                    .member_count()
            })
        });
    }
    group.finish();
}

fn interleaving_explorer_vs_direct(c: &mut Criterion) {
    // The experiment behind the two-engine design decision (DESIGN.md
    // §5): the traceset explorer pays for wrong-value reads.
    let p = chain_program(3);
    let d = Domain::zero_to(1);
    let extraction = extract_traceset(&p, &d, &ExtractOptions::default());
    assert!(!extraction.truncated);
    let opts = ExploreOptions::default();
    let mut group = c.benchmark_group("E12/engine_comparison");
    group.bench_function("traceset_route", |b| {
        b.iter(|| {
            Explorer::new(black_box(&extraction.traceset))
                .behaviours()
                .len()
        })
    });
    group.bench_function("direct_route", |b| {
        b.iter(|| {
            ProgramExplorer::new(black_box(&p))
                .behaviours(&opts)
                .value
                .len()
        })
    });
    group.finish();
}

fn reordering_search_vs_length(c: &mut Criterion) {
    // worst-ish case: a trace of independent writes, searched against the
    // traceset of all its permutations' prefixes — forces backtracking.
    use transafety::traces::{Action, Loc, ThreadId, Trace, Traceset, Value};
    let mut group = c.benchmark_group("E12/reordering_search_vs_len");
    for n in [3usize, 4, 5, 6] {
        let t_prime: Trace = std::iter::once(Action::start(ThreadId::new(0)))
            .chain((0..n).map(|i| Action::write(Loc::normal(i as u32), Value::new(1))))
            .collect();
        // original: the reverse order of writes
        let reversed: Trace = std::iter::once(Action::start(ThreadId::new(0)))
            .chain(
                (0..n)
                    .rev()
                    .map(|i| Action::write(Loc::normal(i as u32), Value::new(1))),
            )
            .collect();
        // target traceset contains every prefix-de-permutation we need:
        // all permutations of the write set (prefix closure handles the
        // intermediate lengths)
        let mut ts = Traceset::new();
        let mut perm: Vec<usize> = (0..n).collect();
        loop {
            let tr: Trace = std::iter::once(Action::start(ThreadId::new(0)))
                .chain(
                    perm.iter()
                        .map(|&i| Action::write(Loc::normal(i as u32), Value::new(1))),
                )
                .collect();
            ts.insert(tr).unwrap();
            if !next_permutation(&mut perm) {
                break;
            }
        }
        ts.insert(reversed).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(t_prime, ts),
            |b, (t, ts)| b.iter(|| find_reordering(black_box(t), ts).expect("permutation exists")),
        );
    }
    group.finish();
}

fn elimination_search_vs_extra(c: &mut Criterion) {
    let (o, t) = transafety::litmus::parse_pair("fig1-original", "fig1-transformed");
    let d = Domain::zero_to(1);
    let to = extract_traceset(&o.program, &d, &ExtractOptions::default()).traceset;
    let tt = extract_traceset(&t.program, &d, &ExtractOptions::default()).traceset;
    let mut group = c.benchmark_group("E12/elimination_search_vs_budget");
    for extra in [1usize, 2, 4, 8] {
        let eo = EliminationOptions {
            max_extra: extra,
            ..EliminationOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(extra), &eo, |b, eo| {
            b.iter(|| {
                transafety::transform::is_elimination_of(black_box(&tt), black_box(&to), &d, eo)
                    .is_ok()
            })
        });
    }
    group.finish();
}

fn worker_scaling(c: &mut Criterion) {
    // E14: the parallel work-stealing driver against the sequential
    // reference (`jobs = 1` dispatches to the memoised recursion) on the
    // heaviest litmus entries and every shipped `programs/*.tsl`. On a
    // multi-core host this sweep is where the ≥1.5× jobs=4 speedup
    // shows up; on a single-core host it measures the pool's overhead.
    let mut corpus: Vec<(String, transafety::lang::Program)> = Vec::new();
    for name in ["iriw", "wrc", "dekker-core", "mp-spin"] {
        let l = transafety::litmus::by_name(name).expect("corpus name");
        corpus.push((name.to_string(), l.parse().program));
    }
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../programs");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("programs/ directory exists")
        .map(|e| e.expect("readable directory entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "tsl"))
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("readable program file");
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        corpus.push((
            name,
            parse_program(&src).expect("valid .tsl program").program,
        ));
    }
    let opts = ExploreOptions::default();
    let mut group = c.benchmark_group("E14/worker_scaling");
    for (name, p) in &corpus {
        for jobs in [1usize, 2, 4, 8] {
            group.bench_with_input(BenchmarkId::new(name, jobs), &jobs, |b, &jobs| {
                b.iter(|| {
                    ProgramExplorer::new(black_box(p))
                        .behaviours_par(&opts, jobs)
                        .value
                        .len()
                })
            });
        }
    }
    group.finish();
}

fn next_permutation(perm: &mut [usize]) -> bool {
    let n = perm.len();
    if n < 2 {
        return false;
    }
    let mut i = n - 1;
    while i > 0 && perm[i - 1] >= perm[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = n - 1;
    while perm[j] <= perm[i - 1] {
        j -= 1;
    }
    perm.swap(i - 1, j);
    perm[i..].reverse();
    true
}

criterion_group! {
    name = scaling;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = behaviours_vs_threads,
    race_check_vs_statements,
    extraction_vs_domain,
    interleaving_explorer_vs_direct,
    reordering_search_vs_length,
    elimination_search_vs_extra,
    worker_scaling
}
criterion_main!(scaling);
