//! The pluggable memory-model backend API.
//!
//! The paper's development is carried out under the interleaving (SC)
//! semantics, and until this module every explorer hard-coded it. §8
//! observes that hardware models (TSO, and conjecturally PSO) are
//! *explained by* SC plus a fragment of the paper's transformations —
//! which makes cross-model exploration a first-class need: the same
//! checker machinery must be able to run a program under SC, TSO or PSO
//! and compare the verdicts.
//!
//! [`MemoryModel`] abstracts exactly what the engines need from a
//! semantics: an initial machine state, the enabled successor moves of
//! a state (each carrying an optional [`Action`] label — buffer flushes
//! are unlabelled), and the fuel policy that bounds loopy programs. The
//! generic [`ModelExplorer`] then provides the governed engines —
//! memoised behaviour extraction, the adjacent-conflict race search,
//! the reachable-state census, and their parallel forms — with the same
//! budget checks, panic quarantine, state interning and
//! `ExploreMetrics` accounting for every model.
//!
//! The [`ScModel`] backend is a pure refactor of the compact SC engine:
//! [`ProgramExplorer`]'s public entry points delegate to
//! `ModelExplorer<ScModel>`, and the pre-existing agreement suites
//! (POR/parallel/reference/metrics) pin the refactor to the old
//! engines' observable output. The TSO and PSO machines of the
//! `transafety-tso` crate implement the trait in that crate.
//!
//! Partial-order reduction is **negotiated per model and per goal**:
//! [`MemoryModel::reduced_moves`] receives a [`ReductionGoal`] naming
//! the property the engine is computing and returns a possibly-reduced
//! move set tagged with its [`ExpansionKind`]. The default is no
//! reduction. The SC backend reduces both goals with the dynamic
//! invisible-singleton ample sets of [`ProgramExplorer`] (sound on
//! loop-bearing programs via the ast-size cycle proviso); the TSO/PSO
//! backends reduce only [`ReductionGoal::Behaviours`] (commuting-flush
//! and private-step ample sets) and return the full expansion for
//! [`ReductionGoal::Races`] — the adjacent-conflict witness argument
//! relies on flush-free interposition, which only full race expansions
//! guarantee under a buffered machine. The census never reduces: it
//! counts *all* reachable states by definition.

use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

use transafety_interleaving::intern::{FxHashMap, FxHashSet, StateInterner};
use transafety_interleaving::metrics::{Counter, CounterTally, ExpansionKind, Phase};
use transafety_interleaving::{
    par, Behaviours, BudgetGuard, EngineFault, Event, Interleaving, RaceWitness,
};
use transafety_traces::{Action, Loc, MemoryModelKind, ThreadId};

use crate::explore::{Bounded, ExploreOptions, ProgramExplorer};

/// The label of a machine transition: a program action, or an internal
/// store-buffer flush that performs no action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoveLabel {
    /// The move performs this program action.
    Action(Action),
    /// The move drains one buffered store to memory — of the given
    /// location for per-location buffers (PSO), or the oldest store of
    /// a FIFO buffer (`None`, TSO). Flushes emit nothing, consume no
    /// action fuel, and are invisible to the race predicate (the racing
    /// access is the buffered write's program action).
    Flush(Option<Loc>),
}

impl MoveLabel {
    /// The program action this move performs, if any.
    #[must_use]
    pub fn action(&self) -> Option<Action> {
        match self {
            MoveLabel::Action(a) => Some(*a),
            MoveLabel::Flush(_) => None,
        }
    }

    /// Is this an internal buffer flush?
    #[must_use]
    pub fn is_flush(&self) -> bool {
        matches!(self, MoveLabel::Flush(_))
    }
}

impl fmt::Display for MoveLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoveLabel::Action(a) => write!(f, "{a}"),
            MoveLabel::Flush(Some(loc)) => write!(f, "flush {loc}"),
            MoveLabel::Flush(None) => write!(f, "flush"),
        }
    }
}

/// One enabled transition of a memory-model machine: the moving thread,
/// the label, and the complete successor state.
#[derive(Debug, Clone)]
pub struct ModelMove<S> {
    /// Index of the thread that moves (flushes belong to the buffering
    /// thread).
    pub thread: usize,
    /// What the move does.
    pub label: MoveLabel,
    /// The machine state after the move.
    pub next: S,
}

/// The property an engine is computing when it asks a model for a
/// reduced move set. Soundness of a reduction depends on the goal: a
/// reduction that preserves the behaviour set need not preserve the
/// adjacent-conflict race witnesses, so models opt in per goal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReductionGoal {
    /// The engine collects external-action behaviours. A reduction must
    /// preserve the set of observable output sequences.
    Behaviours,
    /// The engine runs the adjacent-conflict race search. A reduction
    /// must additionally keep every racing pair detectable through the
    /// last-access tracker and witness-reorderable into adjacency —
    /// under a buffered machine this forbids dropping or interposing
    /// flushes around the tracked access, so TSO/PSO answer with the
    /// full expansion.
    Races,
}

/// A reduced move set, as returned by
/// [`MemoryModel::reduced_moves`]: the moves, the [`ExpansionKind`]
/// describing what the partial-order reduction did, and the await
/// stutter-collapse tallies of the behaviour goal (see
/// [`ExploreOptions::awaits`]). The collapse is orthogonal to the POR:
/// `kind` describes the ample-set choice only, and a state whose
/// self-loop reads were dropped still reports the kind the POR
/// selected.
#[derive(Debug)]
pub struct Reduced<S> {
    /// The (possibly reduced) enabled moves.
    pub moves: Vec<ModelMove<S>>,
    /// How the partial-order reduction treated this expansion.
    pub kind: ExpansionKind,
    /// Failed await re-reads dropped by the stutter collapse (zero for
    /// [`ReductionGoal::Races`], which never collapses).
    pub await_collapsed: u64,
    /// Kept reads on an await-watched location (the spinner advanced).
    pub await_wakeups: u64,
}

impl<S> Reduced<S> {
    /// A reduction result with no await collapse applied.
    #[must_use]
    pub fn new(moves: Vec<ModelMove<S>>, kind: ExpansionKind) -> Self {
        Reduced {
            moves,
            kind,
            await_collapsed: 0,
            await_wakeups: 0,
        }
    }

    /// An unreduced full expansion.
    #[must_use]
    pub fn full(moves: Vec<ModelMove<S>>) -> Self {
        Reduced::new(moves, ExpansionKind::Full)
    }
}

/// A memory model as the exploration engines see it: machine states,
/// enabled moves, and the fuel policy.
///
/// Implementations must be deterministic: equal states must produce
/// equal move lists (the engines memoise and deduplicate on state
/// identity), and the move order must be a pure function of the state
/// (it fixes the exploration and witness order).
pub trait MemoryModel: Sync {
    /// The machine state. `Send + Sync` so the parallel drivers can
    /// shard it across workers.
    type State: Clone + Eq + Hash + Send + Sync;

    /// Which model this is (recorded in reports and stats).
    fn kind(&self) -> MemoryModelKind;

    /// The initial machine state (no thread started, memory zeroed,
    /// buffers empty).
    fn initial(&self) -> Self::State;

    /// All enabled moves of `state`, in deterministic order. Sets
    /// `*truncated` when a thread silently diverges within
    /// `opts.max_tau` (its moves are dropped).
    fn moves(
        &self,
        state: &Self::State,
        opts: &ExploreOptions,
        truncated: &mut bool,
    ) -> Vec<ModelMove<Self::State>>;

    /// The reduced move set for `goal`, tagged with the
    /// [`ExpansionKind`] that describes what the reduction did and the
    /// await stutter-collapse tallies.
    ///
    /// The default is **no reduction** for every goal: a model only
    /// overrides this where its ample-set argument is proven. Overrides
    /// must honour `opts.por == false` by returning the full expansion,
    /// and `opts.awaits == false` by not collapsing; the await collapse
    /// applies only to [`ReductionGoal::Behaviours`] (a spin read can
    /// race, so the race goal keeps every failed read).
    fn reduced_moves(
        &self,
        state: &Self::State,
        goal: ReductionGoal,
        opts: &ExploreOptions,
        truncated: &mut bool,
    ) -> Reduced<Self::State> {
        let _ = goal;
        Reduced::full(self.moves(state, opts, truncated))
    }

    /// Action fuel for the behaviour engines: `usize::MAX` when the
    /// bounded semantics is exact (loop-free programs), else
    /// `opts.max_actions`. Flush moves never consume fuel.
    fn fuel(&self, opts: &ExploreOptions) -> usize;

    /// Fuel for the race search and the census. The default is
    /// [`fuel`](MemoryModel::fuel): buffered machines have an infinite
    /// state space on loopy programs (buffers grow without bound), so
    /// those searches must be fuel-bounded to terminate. SC overrides
    /// this to `usize::MAX` — its program state space is finite even
    /// with loops, and the searches are exact.
    fn search_fuel(&self, opts: &ExploreOptions) -> usize {
        self.fuel(opts)
    }
}

/// The previous normal access of the race searches, as
/// `(thread, location, was_write)`.
type Prev = Option<(usize, Loc, bool)>;

/// Rebuilds an adjacent §3 witness when the race-carrying access was
/// detected across interposed ample moves: drains the tail of `path`
/// starting at the tracked access's event, re-appends only the racing
/// thread's interposed events (they precede its racing access in
/// program order and are independent of the tracked access — an ample
/// move conflicting with it would itself have been reported), then
/// re-appends the tracked access last. Every dropped event is trailing
/// work of some other thread, so the result is a prefix of a
/// Mazurkiewicz-equivalent execution. The caller pushes the racing
/// event after this returns. `prev_at` is the path length right after
/// the tracked access's event was pushed; a no-op when nothing was
/// interposed.
pub(crate) fn reorder_carried_witness(path: &mut Vec<Event>, prev_at: usize, racing: ThreadId) {
    if path.len() <= prev_at {
        return; // nothing interposed: the pair is already adjacent
    }
    let mut tail: Vec<Event> = path.drain(prev_at - 1..).collect();
    let earlier = tail.remove(0);
    path.extend(tail.into_iter().filter(|e| e.thread() == racing));
    path.push(earlier);
}

/// One step of a model execution schedule: which thread moved and what
/// the move did. Unlike an [`Interleaving`] (actions only), a schedule
/// records buffer flushes, so a TSO/PSO witness shows *when* each
/// buffered store drained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleStep {
    /// The moving thread.
    pub thread: usize,
    /// What the move did.
    pub label: MoveLabel,
}

impl fmt::Display for ScheduleStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}: {}", self.thread, self.label)
    }
}

/// A race witness found under a memory model: the action-level
/// execution (the §3 adjacent-conflict pair is its last two conflicting
/// events) plus the full machine schedule including flushes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelRaceWitness {
    /// The witnessing execution, as the interleaving of its actions.
    pub witness: RaceWitness,
    /// The machine schedule of the witness, flushes included. For SC
    /// this is the action sequence again; for TSO/PSO it shows the
    /// buffer/flush timing that produced the racy execution.
    pub schedule: Vec<ScheduleStep>,
}

/// The generic exploration engine over a [`MemoryModel`] backend: the
/// governed behaviour, race and census engines (sequential and
/// parallel), shared by every model.
#[derive(Debug, Clone, Copy)]
pub struct ModelExplorer<'m, M> {
    model: &'m M,
}

impl<'m, M: MemoryModel> ModelExplorer<'m, M> {
    /// Creates an explorer over the model backend.
    #[must_use]
    pub fn new(model: &'m M) -> Self {
        ModelExplorer { model }
    }

    /// The backing model.
    #[must_use]
    pub fn model(&self) -> &'m M {
        self.model
    }

    /// [`behaviours_governed`](ModelExplorer::behaviours_governed)
    /// without a budget.
    #[must_use]
    pub fn behaviours(&self, opts: &ExploreOptions) -> Bounded<Behaviours> {
        self.behaviours_governed(opts, &BudgetGuard::unlimited())
    }

    /// [`race_witness_governed`](ModelExplorer::race_witness_governed)
    /// without a budget.
    #[must_use]
    pub fn race_witness(&self, opts: &ExploreOptions) -> Option<ModelRaceWitness> {
        self.race_witness_governed(opts, &BudgetGuard::unlimited())
    }

    /// [`count_reachable_states_governed`](ModelExplorer::count_reachable_states_governed)
    /// without a budget.
    #[must_use]
    pub fn count_reachable_states(&self, opts: &ExploreOptions) -> usize {
        self.count_reachable_states_governed(opts, &BudgetGuard::unlimited())
    }

    /// The behaviours of the program's executions under the model, by
    /// the memoised suffix dynamic program; `guard` is checked
    /// cooperatively at every state visit.
    #[must_use]
    pub fn behaviours_governed(
        &self,
        opts: &ExploreOptions,
        guard: &BudgetGuard,
    ) -> Bounded<Behaviours> {
        let metrics = guard.metrics();
        let _span = metrics.span(Phase::BehaviourEval);
        let tally = CounterTally::new(metrics);
        let mut interner: StateInterner<M::State> = StateInterner::new();
        let mut memo: FxHashMap<(u32, usize), Arc<Behaviours>> = FxHashMap::default();
        let mut truncated = false;
        let fuel = self.model.fuel(opts);
        let init = self.model.initial();
        let (id, _) = interner.intern_ref(&init);
        let set = self.suffixes(
            id,
            fuel,
            init,
            opts,
            &mut interner,
            &mut memo,
            &mut truncated,
            guard,
            &tally,
        );
        drop(tally);
        if truncated {
            guard.trip_action_bound();
        }
        if metrics.is_enabled() {
            metrics.record_intern(interner.probe_stats());
            // The memo is the phase's dedup structure — keyed `(state
            // id, fuel)`, so loopy programs revisiting a state at a
            // different fuel count each layer once (dedup *hits* are
            // counted at the memo-hit site in `suffixes`).
            metrics.add(Counter::StatesInterned, memo.len() as u64);
        }
        Bounded {
            value: (*set).clone(),
            complete: !truncated,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn suffixes(
        &self,
        id: u32,
        fuel: usize,
        state: M::State,
        opts: &ExploreOptions,
        interner: &mut StateInterner<M::State>,
        memo: &mut FxHashMap<(u32, usize), Arc<Behaviours>>,
        truncated: &mut bool,
        guard: &BudgetGuard,
        tally: &CounterTally<'_>,
    ) -> Arc<Behaviours> {
        if let Some(r) = memo.get(&(id, fuel)) {
            tally.bump(Counter::StatesDeduped);
            return Arc::clone(r);
        }
        let mut set = Behaviours::new();
        set.insert(Vec::new());
        if guard.should_stop() {
            // Partial result: not memoised, so it cannot be reused as
            // the state's exact suffix set.
            *truncated = true;
            return Arc::new(set);
        }
        guard.note_state_tallied(tally);
        let red = self
            .model
            .reduced_moves(&state, ReductionGoal::Behaviours, opts, truncated);
        tally.expansion(red.moves.len(), red.kind);
        tally.add(Counter::AwaitCollapsed, red.await_collapsed);
        tally.add(Counter::AwaitWakeups, red.await_wakeups);
        let moves = red.moves;
        drop(state);
        if fuel == 0 {
            // Out of action fuel. Flush-only suffixes contribute no
            // behaviour, so nothing below is followed; any pending
            // action move means the set is under-approximated.
            if moves.iter().any(|m| !m.label.is_flush()) {
                *truncated = true;
            }
        } else {
            for mv in moves {
                // Flushes are free: they consume no action fuel
                // (otherwise long buffers would starve the bound), but
                // they strictly shrink a buffer so the recursion is
                // well-founded.
                let next_fuel = if mv.label.is_flush() || fuel == usize::MAX {
                    fuel
                } else {
                    fuel - 1
                };
                let (sid, _) = interner.intern_ref(&mv.next);
                let tail = self.suffixes(
                    sid, next_fuel, mv.next, opts, interner, memo, truncated, guard, tally,
                );
                if let MoveLabel::Action(Action::External(v)) = mv.label {
                    for suffix in tail.iter() {
                        let mut b = Vec::with_capacity(suffix.len() + 1);
                        b.push(v);
                        b.extend_from_slice(suffix);
                        set.insert(b);
                    }
                } else {
                    set.extend(tail.iter().cloned());
                }
            }
        }
        let rc = Arc::new(set);
        memo.insert((id, fuel), Arc::clone(&rc));
        rc
    }

    /// [`behaviours_governed`](ModelExplorer::behaviours_governed) on
    /// `jobs` workers: the parallel driver deduplicates the
    /// fuel-layered state graph concurrently, then evaluates the same
    /// dynamic program bottom-up — bit-identical result regardless of
    /// worker count. A quarantined worker panic records a fault on the
    /// guard and degrades to the sequential engine.
    #[must_use]
    pub fn behaviours_par_governed(
        &self,
        opts: &ExploreOptions,
        jobs: usize,
        guard: &BudgetGuard,
    ) -> Bounded<Behaviours> {
        if jobs <= 1 {
            return self.behaviours_governed(opts, guard);
        }
        let outcome = {
            // Scoped so the fault fallback's sequential span does not
            // nest inside the parallel one.
            let _span = guard.metrics().span(Phase::BehaviourEval);
            self.state_graph(opts, jobs, guard).and_then(|graph| {
                let truncated = graph.truncated;
                par::behaviours_of(&graph, jobs, guard.metrics()).map(|value| (value, truncated))
            })
        };
        match outcome {
            Ok((value, truncated)) => {
                if truncated {
                    guard.trip_action_bound();
                }
                Bounded {
                    value,
                    complete: !truncated,
                }
            }
            Err(_) => {
                guard.record_fault();
                self.behaviours_governed(opts, guard)
            }
        }
    }

    /// Builds the deduplicated fuel-layered state graph in parallel.
    /// Nodes are `(state, fuel)` pairs — exactly the sequential memo
    /// key — so the graph is a DAG: actions strictly consume fuel (or,
    /// in the loop-free `usize::MAX` regime, statements) and flushes
    /// keep fuel but strictly shrink a buffer.
    fn state_graph(
        &self,
        opts: &ExploreOptions,
        jobs: usize,
        guard: &BudgetGuard,
    ) -> Result<par::StateGraph<(M::State, usize)>, EngineFault> {
        par::build_state_graph(
            jobs,
            (self.model.initial(), self.model.fuel(opts)),
            guard,
            |node: &(M::State, usize)| {
                let (state, fuel) = node;
                let mut truncated = false;
                let red = self.model.reduced_moves(
                    state,
                    ReductionGoal::Behaviours,
                    opts,
                    &mut truncated,
                );
                let metrics = guard.metrics();
                metrics.record_expansion(red.moves.len(), red.kind);
                metrics.add(Counter::AwaitCollapsed, red.await_collapsed);
                metrics.add(Counter::AwaitWakeups, red.await_wakeups);
                let moves = red.moves;
                let mut out = Vec::with_capacity(moves.len());
                if *fuel == 0 {
                    if moves.iter().any(|m| !m.label.is_flush()) {
                        truncated = true;
                    }
                } else {
                    for mv in moves {
                        let next_fuel = if mv.label.is_flush() || *fuel == usize::MAX {
                            *fuel
                        } else {
                            fuel - 1
                        };
                        out.push((mv.label.action(), (mv.next, next_fuel)));
                    }
                }
                par::Expansion {
                    moves: out,
                    truncated,
                }
            },
        )
    }

    /// Searches for a data race: the §3 adjacent-conflict condition,
    /// evaluated over the model's executions. Flush moves carry the
    /// previous access through unchanged — the racing access is the
    /// write's program action, not its drain. `guard` is checked at
    /// every newly visited search node; with a tripped guard a `None`
    /// is not a proof of freedom (callers consult the trip reason).
    ///
    /// Incompleteness from the model's
    /// [`search_fuel`](MemoryModel::search_fuel) bound is not recorded
    /// here: the behaviour engine shares the same fuel and trips the
    /// guard's action bound whenever the bound binds, which is what the
    /// checker's completeness verdict consumes.
    #[must_use]
    pub fn race_witness_governed(
        &self,
        opts: &ExploreOptions,
        guard: &BudgetGuard,
    ) -> Option<ModelRaceWitness> {
        let metrics = guard.metrics();
        let _span = metrics.span(Phase::RaceSearch);
        let tally = CounterTally::new(metrics);
        let mut interner: StateInterner<M::State> = StateInterner::new();
        let mut visited: FxHashSet<(u32, Prev, usize)> = FxHashSet::default();
        let mut path = Vec::new();
        let mut schedule = Vec::new();
        let mut truncated = false;
        let racy = self.race_dfs(
            self.model.initial(),
            None,
            0,
            0,
            self.model.search_fuel(opts),
            opts,
            &mut interner,
            &mut visited,
            &mut path,
            &mut schedule,
            &mut truncated,
            guard,
            &tally,
        );
        drop(tally);
        if metrics.is_enabled() {
            metrics.record_intern(interner.probe_stats());
            // The `(state id, last-access, fuel)` visited set is the
            // phase's dedup structure (dedup hits counted at the
            // insert-miss site in `race_dfs`).
            metrics.add(Counter::StatesInterned, visited.len() as u64);
        }
        racy.then(|| ModelRaceWitness {
            witness: RaceWitness {
                execution: Interleaving::from_events(path),
            },
            schedule,
        })
    }

    /// Check-before-carry (see `ProgramExplorer::ref_race_dfs` and the
    /// interleaving crate's `race_dfs`): under an ample expansion the
    /// moves are still race-checked against `prev` — an invisible move
    /// can conflict with a *past* access — but `prev` is carried
    /// through them unchanged, and on detection
    /// [`reorder_carried_witness`] slides the interposed ample events
    /// out so the reported pair is adjacent. `prev_at`/`sched_at`
    /// record where `prev`'s event sits in `path`/`schedule`; they are
    /// witness bookkeeping only and not part of the visited key.
    #[allow(clippy::too_many_arguments)]
    fn race_dfs(
        &self,
        state: M::State,
        prev: Prev,
        prev_at: usize,
        sched_at: usize,
        fuel: usize,
        opts: &ExploreOptions,
        interner: &mut StateInterner<M::State>,
        visited: &mut FxHashSet<(u32, Prev, usize)>,
        path: &mut Vec<Event>,
        schedule: &mut Vec<ScheduleStep>,
        truncated: &mut bool,
        guard: &BudgetGuard,
        tally: &CounterTally<'_>,
    ) -> bool {
        if guard.should_stop() {
            return false;
        }
        // Reference-first probe: the state is cloned into the arena only
        // when it is genuinely new.
        let (id, _) = interner.intern_ref(&state);
        if !visited.insert((id, prev, fuel)) {
            tally.bump(Counter::StatesDeduped);
            return false;
        }
        guard.note_state_tallied(tally);
        let Reduced { moves, kind, .. } =
            self.model
                .reduced_moves(&state, ReductionGoal::Races, opts, truncated);
        tally.expansion(moves.len(), kind);
        drop(state);
        for mv in moves {
            let step = ScheduleStep {
                thread: mv.thread,
                label: mv.label,
            };
            let MoveLabel::Action(action) = mv.label else {
                // A flush: no access, no action fuel, prev unchanged.
                schedule.push(step);
                if self.race_dfs(
                    mv.next, prev, prev_at, sched_at, fuel, opts, interner, visited, path,
                    schedule, truncated, guard, tally,
                ) {
                    return true;
                }
                schedule.pop();
                continue;
            };
            if fuel == 0 {
                // Out of search fuel (buffered model on a loopy
                // program): the pruned subtree is covered by the
                // behaviour engine's matching action-bound trip.
                *truncated = true;
                continue;
            }
            let tid = ThreadId::new(mv.thread as u32);
            if let Some((pk, pl, pw)) = prev {
                if pk != mv.thread
                    && action.is_access_to(pl)
                    && !pl.is_volatile()
                    && (pw || action.is_write())
                {
                    if path.len() > prev_at {
                        // Ample action moves were interposed (only the
                        // SC reduction does this — race-goal buffered
                        // expansions are full, so their interpositions
                        // are flushes, which never enter `path`).
                        reorder_carried_witness(path, prev_at, tid);
                        let mut tail: Vec<ScheduleStep> = schedule.drain(sched_at - 1..).collect();
                        let earlier = tail.remove(0);
                        schedule.extend(
                            tail.into_iter()
                                .filter(|s| s.thread == mv.thread && !s.label.is_flush()),
                        );
                        schedule.push(earlier);
                    }
                    path.push(Event::new(tid, action));
                    schedule.push(step);
                    return true;
                }
            }
            let (next_prev, next_prev_at, next_sched_at) = if kind.is_ample() {
                if prev.is_some() {
                    tally.prev_carry();
                }
                (prev, prev_at, sched_at)
            } else {
                match action {
                    Action::Read { loc, .. } if !loc.is_volatile() => (
                        Some((mv.thread, loc, false)),
                        path.len() + 1,
                        schedule.len() + 1,
                    ),
                    Action::Write { loc, .. } if !loc.is_volatile() => (
                        Some((mv.thread, loc, true)),
                        path.len() + 1,
                        schedule.len() + 1,
                    ),
                    _ => (None, 0, 0),
                }
            };
            let next_fuel = if fuel == usize::MAX { fuel } else { fuel - 1 };
            path.push(Event::new(tid, action));
            schedule.push(step);
            if self.race_dfs(
                mv.next,
                next_prev,
                next_prev_at,
                next_sched_at,
                next_fuel,
                opts,
                interner,
                visited,
                path,
                schedule,
                truncated,
                guard,
                tally,
            ) {
                return true;
            }
            path.pop();
            schedule.pop();
        }
        false
    }

    /// The race search on `jobs` workers. The parallel phase only
    /// decides *existence* (it partitions the
    /// `(state, last-access, fuel)` search space across workers with
    /// early exit); when a race exists the canonical witness is
    /// reconstructed by the sequential search so the reported execution
    /// does not depend on scheduling. A pool fault is recorded on the
    /// guard and the search degrades to the sequential governed engine.
    #[must_use]
    pub fn race_witness_par_governed(
        &self,
        opts: &ExploreOptions,
        jobs: usize,
        guard: &BudgetGuard,
    ) -> Option<ModelRaceWitness> {
        if jobs <= 1 {
            return self.race_witness_governed(opts, guard);
        }
        let span = guard.metrics().span(Phase::RaceSearch);
        let searched = par::parallel_reach(
            jobs,
            (self.model.initial(), None, self.model.search_fuel(opts)),
            guard,
            |(state, prev, fuel): &(M::State, Prev, usize)| {
                let mut truncated = false;
                let mut found = false;
                let mut successors = Vec::new();
                let Reduced { moves, kind, .. } =
                    self.model
                        .reduced_moves(state, ReductionGoal::Races, opts, &mut truncated);
                guard.metrics().record_expansion(moves.len(), kind);
                for mv in moves {
                    let MoveLabel::Action(action) = mv.label else {
                        successors.push((mv.next, *prev, *fuel));
                        continue;
                    };
                    if *fuel == 0 {
                        continue;
                    }
                    if let Some((pk, pl, pw)) = *prev {
                        if pk != mv.thread
                            && action.is_access_to(pl)
                            && !pl.is_volatile()
                            && (pw || action.is_write())
                        {
                            found = true;
                            break;
                        }
                    }
                    // Check-before-carry, exactly as in the sequential
                    // `race_dfs`: an ample move is race-checked above
                    // but never overwrites the last-access tracker.
                    let next_prev = if kind.is_ample() {
                        if prev.is_some() {
                            guard.metrics().record_prev_carry();
                        }
                        *prev
                    } else {
                        match action {
                            Action::Read { loc, .. } if !loc.is_volatile() => {
                                Some((mv.thread, loc, false))
                            }
                            Action::Write { loc, .. } if !loc.is_volatile() => {
                                Some((mv.thread, loc, true))
                            }
                            _ => None,
                        }
                    };
                    let next_fuel = if *fuel == usize::MAX { *fuel } else { fuel - 1 };
                    successors.push((mv.next, next_prev, next_fuel));
                }
                par::SearchStep { successors, found }
            },
        );
        // Close the parallel span before witness reconstruction or the
        // fault fallback, whose sequential spans stand on their own.
        drop(span);
        let racy = match searched {
            Ok(racy) => racy,
            Err(_) => {
                guard.record_fault();
                return self.race_witness_governed(opts, guard);
            }
        };
        if racy {
            // The race provably exists, so the ungoverned sequential
            // DFS terminates at it; reconstruction is therefore exempt
            // from the (possibly already tripped) budget.
            let witness = self.race_witness_governed(opts, &BudgetGuard::unlimited());
            debug_assert!(
                witness.is_some(),
                "parallel race search found a race the sequential search missed"
            );
            witness
        } else {
            None
        }
    }

    /// The number of distinct machine states reachable under the
    /// bounds. On buffered models with loops the walk is additionally
    /// layered by [`search_fuel`](MemoryModel::search_fuel) to
    /// terminate; the count is still of distinct *states* (the
    /// interner's arena), not of fuel layers.
    #[must_use]
    pub fn count_reachable_states_governed(
        &self,
        opts: &ExploreOptions,
        guard: &BudgetGuard,
    ) -> usize {
        // The interner *is* the distinct-state set: dedup by id, count
        // by arena length, expand by borrowing the arena copy back out.
        let metrics = guard.metrics();
        let _span = metrics.span(Phase::Census);
        let tally = CounterTally::new(metrics);
        let mut interner: StateInterner<M::State> = StateInterner::new();
        let mut visited: FxHashSet<(u32, usize)> = FxHashSet::default();
        let mut truncated = false;
        let fuel = self.model.search_fuel(opts);
        let (root, _) = interner.intern(self.model.initial());
        visited.insert((root, fuel));
        let mut stack = vec![(root, fuel)];
        while let Some((id, fuel)) = stack.pop() {
            if guard.should_stop() {
                break;
            }
            guard.note_state_tallied(&tally);
            let state = interner.get(id).clone();
            let moves = self.model.moves(&state, opts, &mut truncated);
            tally.expansion(moves.len(), ExpansionKind::Full);
            drop(state);
            for mv in moves {
                let next_fuel = if mv.label.is_flush() || fuel == usize::MAX {
                    fuel
                } else if fuel == 0 {
                    continue;
                } else {
                    fuel - 1
                };
                let (sid, _) = interner.intern(mv.next);
                if visited.insert((sid, next_fuel)) {
                    stack.push((sid, next_fuel));
                } else {
                    tally.bump(Counter::StatesDeduped);
                }
            }
        }
        drop(tally);
        if metrics.is_enabled() {
            metrics.record_intern(interner.probe_stats());
            // The `(state id, fuel)` visited set is the phase's dedup
            // structure — mirroring the race phase's convention — so
            // `states_visited <= states_interned` holds even when fuel
            // layering revisits a state; the *returned* count is still
            // the arena's distinct states.
            metrics.add(Counter::StatesInterned, visited.len() as u64);
        }
        interner.len()
    }

    /// The reachable-state count on `jobs` workers; a pool fault
    /// degrades to the sequential governed count. Fuel-layered walks
    /// (buffered model, loopy program) run sequentially: the parallel
    /// driver counts visited search keys, which only equals the
    /// distinct-state count when no fuel layering is in effect.
    #[must_use]
    pub fn count_reachable_states_par_governed(
        &self,
        opts: &ExploreOptions,
        jobs: usize,
        guard: &BudgetGuard,
    ) -> usize {
        if jobs <= 1 || self.model.search_fuel(opts) != usize::MAX {
            return self.count_reachable_states_governed(opts, guard);
        }
        let counted = {
            // Scoped so the fault fallback's sequential span does not
            // nest inside the parallel one.
            let _span = guard.metrics().span(Phase::Census);
            par::parallel_state_count(jobs, self.model.initial(), guard, |state| {
                let mut truncated = false;
                let moves = self.model.moves(state, opts, &mut truncated);
                guard
                    .metrics()
                    .record_expansion(moves.len(), ExpansionKind::Full);
                moves.into_iter().map(|mv| mv.next).collect()
            })
        };
        counted.unwrap_or_else(|_| {
            guard.record_fault();
            self.count_reachable_states_governed(opts, guard)
        })
    }
}

// ---------------------------------------------------------------------
// The SC backend: the compact ProgramExplorer machine behind the trait
// ---------------------------------------------------------------------

/// The sequentially consistent backend: a zero-cost adapter over the
/// compact [`ProgramExplorer`] machine (interned thread configs, word
/// states, dynamic ample-set POR). [`ProgramExplorer`]'s public entry
/// points are thin wrappers over `ModelExplorer<ScModel>`, so this
/// backend *is* the production SC engine, not a parallel
/// implementation of it.
#[derive(Debug, Clone, Copy)]
pub struct ScModel<'e, 'p> {
    explorer: &'e ProgramExplorer<'p>,
}

impl<'e, 'p> ScModel<'e, 'p> {
    /// Wraps a program explorer as a model backend.
    #[must_use]
    pub fn new(explorer: &'e ProgramExplorer<'p>) -> Self {
        ScModel { explorer }
    }
}

impl MemoryModel for ScModel<'_, '_> {
    type State = crate::explore::CState;

    fn kind(&self) -> MemoryModelKind {
        MemoryModelKind::Sc
    }

    fn initial(&self) -> Self::State {
        self.explorer.initial_compact()
    }

    fn moves(
        &self,
        state: &Self::State,
        opts: &ExploreOptions,
        truncated: &mut bool,
    ) -> Vec<ModelMove<Self::State>> {
        self.explorer
            .moves_vec(state, opts, truncated)
            .into_iter()
            .map(|mv| ModelMove {
                thread: mv.thread,
                label: MoveLabel::Action(mv.action),
                next: self.explorer.apply(state, &mv),
            })
            .collect()
    }

    fn reduced_moves(
        &self,
        state: &Self::State,
        goal: ReductionGoal,
        opts: &ExploreOptions,
        truncated: &mut bool,
    ) -> Reduced<Self::State> {
        // The SC POR serves both goals: there are no flushes, so the
        // race-goal witness argument (check-before-carry plus reorder)
        // holds for the same ample sets that preserve behaviours.
        let (mut moves, kind) = self.explorer.por_moves_vec(state, opts, truncated);
        // The await collapse serves only the behaviour goal: a spin
        // read can race, so the race search keeps every failed read
        // adjacent to the writes of the watched location. A self-loop
        // read never passes the ast-size proviso, so it is never the
        // ample singleton and collapsing after the POR drops nothing
        // the reduction relied on.
        let (await_collapsed, await_wakeups) = if goal == ReductionGoal::Behaviours && opts.awaits {
            self.explorer.collapse_awaits(state, &mut moves)
        } else {
            (0, 0)
        };
        Reduced {
            moves: moves
                .into_iter()
                .map(|mv| ModelMove {
                    thread: mv.thread,
                    label: MoveLabel::Action(mv.action),
                    next: self.explorer.apply(state, &mv),
                })
                .collect(),
            kind,
            await_collapsed,
            await_wakeups,
        }
    }

    fn fuel(&self, opts: &ExploreOptions) -> usize {
        self.explorer.fuel(opts)
    }

    fn search_fuel(&self, _opts: &ExploreOptions) -> usize {
        // The SC program state space is finite (values are drawn from
        // program constants), so the race search and census are exact
        // without fuel.
        usize::MAX
    }
}
