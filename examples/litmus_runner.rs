//! A herd-style litmus runner: every corpus program is executed under
//! the three machine models of this repository — SC (§3 executions),
//! TSO and PSO (§8 store-buffer machines) — and the model-specific
//! outcomes are reported.
//!
//! The hierarchy SC ⊆ TSO ⊆ PSO is asserted program by program; the
//! printed deltas are exactly the relaxed behaviours the §8 experiments
//! explain through the paper's transformations.
//!
//! Run with `cargo run --example litmus_runner`.

use transafety::lang::{ExploreOptions, ModelExplorer, ProgramExplorer};
use transafety::litmus::corpus;
use transafety::tso::{PsoModel, TsoModel};

fn render(b: &[transafety::traces::Value]) -> String {
    let inner: Vec<String> = b.iter().map(ToString::to_string).collect();
    format!("[{}]", inner.join(","))
}

fn main() {
    let opts = ExploreOptions::default();
    println!(
        "{:<24} {:>5} {:>5} {:>5}  model-specific outcomes",
        "litmus", "#SC", "#TSO", "#PSO"
    );
    for l in corpus() {
        let p = l.parse().program;
        if p.threads().iter().flatten().count() > 14 {
            continue;
        }
        let sc = ProgramExplorer::new(&p).behaviours(&opts);
        let tso_model = TsoModel::new(&p);
        let tso = ModelExplorer::new(&tso_model).behaviours(&opts);
        let pso_model = PsoModel::new(&p);
        let pso = ModelExplorer::new(&pso_model).behaviours(&opts);
        if !(sc.complete && tso.complete && pso.complete) {
            println!("{:<24} (bounds hit — skipped)", l.name);
            continue;
        }
        assert!(sc.value.is_subset(&tso.value), "{}: SC ⊄ TSO", l.name);
        assert!(tso.value.is_subset(&pso.value), "{}: TSO ⊄ PSO", l.name);
        let tso_only: Vec<String> = tso.value.difference(&sc.value).map(|b| render(b)).collect();
        let pso_only: Vec<String> = pso
            .value
            .difference(&tso.value)
            .map(|b| render(b))
            .collect();
        let mut notes = String::new();
        if !tso_only.is_empty() {
            notes.push_str(&format!("TSO+: {} ", tso_only.join(" ")));
        }
        if !pso_only.is_empty() {
            notes.push_str(&format!("PSO+: {}", pso_only.join(" ")));
        }
        println!(
            "{:<24} {:>5} {:>5} {:>5}  {}",
            l.name,
            sc.value.len(),
            tso.value.len(),
            pso.value.len(),
            notes
        );
    }
    println!("\nhierarchy SC ⊆ TSO ⊆ PSO holds on the whole corpus. ✔");
}
